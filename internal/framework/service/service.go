// Package service implements an elastic, replicated long-running-service
// framework — the third hosted framework family after batch (OGE-like)
// and mapreduce (Hadoop-like), exercising Meryn's openness claim on the
// workload class soCloud and SLO-ML identify as the defining multi-cloud
// PaaS concern: latency-sensitive services under elastic load.
//
// A service job runs one replica per node for a contracted lifetime
// (Job.Work seconds of wall time). Requests arrive open-loop at a rate
// Job.Rate(t) the framework samples every Tick; each replica serves
// Job.SvcRate requests/s at SpeedFactor 1.0. Latency follows an
// M/M/1-PS aggregate model (see p95 below): the framework evaluates the
// p95 response time once per tick, records it in a rolling window, and
// counts SLO-burn intervals against Job.TargetP95 — including intervals
// spent queued or suspended, which are full outages.
//
// Elasticity: each service has a target replica count (initially the
// contracted Job.VMs). SetTargetReplicas grows the service onto free
// nodes (next scheduling pass) or shrinks it immediately, and Shrink
// lets the Cluster Manager reclaim replicas under a bid — services
// yield capacity by shrinking, never by suspending, which is what makes
// the reclaim bid of the service adapter (core) cheap when load is low.
//
// Scheduler state is indexed exactly like batch: free and idle-disabled
// nodes live in intrusive attach-ordered sets (framework.NodeIndex),
// the wait queue is a ring deque, and the running set is a maintained
// submission-ordered SeqSet — so the PR-2 index invariants and the
// index-consistency lifecycle tests carry over unchanged.
package service

import (
	"errors"
	"fmt"
	"math"

	"meryn/internal/framework"
	"meryn/internal/sim"
)

// Errors returned by the service framework.
var (
	ErrNodeExists  = errors.New("service: node already attached")
	ErrNodeUnknown = errors.New("service: unknown node")
	ErrNodeBusy    = errors.New("service: node hosts a replica")
	ErrJobExists   = errors.New("service: job already submitted")
	ErrJobUnknown  = errors.New("service: unknown job")
	ErrJobState    = errors.New("service: job is not in a valid state for this operation")
	ErrBadJob      = errors.New("service: invalid job description")
)

type nodeState struct {
	node     framework.Node
	disabled bool
	jobID    string // "" when hosting no replica
	entry    framework.IndexEntry
}

// svcState is the framework's per-service bookkeeping.
type svcState struct {
	job *framework.Job
	seq uint64 // submission order

	target  int      // desired replicas; schedule() grows toward it
	nodeIDs []string // replica nodes in assignment order

	startedAt sim.Time   // current execution segment start
	finish    *sim.Timer // fires when the remaining lifetime elapses

	// SLO accounting, advanced once per tick while the job is unsettled.
	intervals int // evaluated intervals
	burned    int // intervals with p95 above target (or the service down)
	window    [rollingWindow]float64
	windowN   int // samples recorded into window (caps at len(window))

	peakReplicas int
}

// rollingWindow is the number of per-tick p95 samples kept for
// RollingP95 — enough history to smooth one-tick blips without hiding a
// building burst from the Application Controller.
const rollingWindow = 6

// Stats is the monitoring view one service exposes to its Application
// Controller: current load, capacity, latency and SLO-burn accounting.
type Stats struct {
	Replicas int // current replica count
	Target   int // desired replica count

	OfferedRate float64 // requests/s arriving now
	Capacity    float64 // requests/s the current replicas absorb
	P95         float64 // latest per-tick p95 response time [s]
	RollingP95  float64 // max p95 over the rolling window [s]

	Intervals    int // SLO intervals evaluated so far
	Burned       int // intervals that burned (p95 over target, or downtime)
	PeakReplicas int
}

// Config configures a service framework instance.
type Config struct {
	Name   string
	Image  string
	Events framework.Events

	// Tick is the SLO evaluation interval: how often offered load is
	// sampled, p95 recomputed and burn accounted (default 10 s).
	Tick sim.Time
}

// Service is the elastic long-running-service framework. It implements
// framework.Framework.
type Service struct {
	eng   *sim.Engine
	cfg   Config
	nodes map[string]*nodeState

	// attachSeq stamps nodes in attach order; the indexes keep that
	// order so node selection is deterministic and attach-ordered.
	attachSeq uint64
	free      framework.NodeIndex // enabled nodes hosting no replica
	idleDis   framework.NodeIndex // disabled nodes hosting no replica

	jobs   map[string]*svcState
	jobSeq uint64
	queue  framework.Deque[string] // services waiting for their initial replicas

	// running holds running jobs in submission order (Framework
	// contract); states mirrors it with the framework bookkeeping.
	running framework.SeqSet[*framework.Job]
	states  framework.SeqSet[*svcState]

	// unsettled counts services not yet done: the ticker runs while any
	// exist (queued and suspended services burn SLO intervals too).
	unsettled int
	tick      *sim.Timer
}

var _ framework.Framework = (*Service)(nil)

// New returns an empty service framework.
func New(eng *sim.Engine, cfg Config) *Service {
	if cfg.Name == "" {
		cfg.Name = "service"
	}
	if cfg.Image == "" {
		cfg.Image = cfg.Name + ".img"
	}
	if cfg.Tick <= 0 {
		cfg.Tick = sim.Seconds(10)
	}
	return &Service{
		eng:   eng,
		cfg:   cfg,
		nodes: make(map[string]*nodeState),
		jobs:  make(map[string]*svcState),
	}
}

// Name implements framework.Framework.
func (s *Service) Name() string { return s.cfg.Name }

// Image implements framework.Framework.
func (s *Service) Image() string { return s.cfg.Image }

// Tick returns the SLO evaluation interval.
func (s *Service) Tick() sim.Time { return s.cfg.Tick }

// AddNode implements framework.Framework. New capacity immediately
// feeds waiting services and under-target growth.
func (s *Service) AddNode(n framework.Node) {
	if _, dup := s.nodes[n.ID]; dup {
		panic(fmt.Sprintf("%v: %s", ErrNodeExists, n.ID))
	}
	if n.SpeedFactor <= 0 {
		n.SpeedFactor = 1.0
	}
	ns := &nodeState{node: n}
	ns.entry.Init(n.ID, s.attachSeq, n.Cloud)
	s.attachSeq++
	s.nodes[n.ID] = ns
	s.free.Insert(&ns.entry)
	s.schedule()
}

// DisableNode implements framework.Framework. A disabled node hosting a
// replica keeps serving until the service shrinks or finishes; the
// scheduler assigns it no new replicas.
func (s *Service) DisableNode(id string) error {
	ns, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	if !ns.disabled {
		ns.disabled = true
		if ns.jobID == "" {
			ns.entry.Unlink()
			s.idleDis.Insert(&ns.entry)
		}
	}
	return nil
}

// RemoveNode implements framework.Framework.
func (s *Service) RemoveNode(id string) error {
	ns, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	if ns.jobID != "" {
		return fmt.Errorf("%w: %s hosts a replica of %s", ErrNodeBusy, id, ns.jobID)
	}
	ns.entry.Unlink()
	delete(s.nodes, id)
	return nil
}

// FailNode implements framework.Framework. Losing one replica of many is
// survivable — that is the availability argument for replication — so
// the service keeps running on the survivors (an OnScale notification
// re-opens accounting). Losing the last replica takes the service down:
// it requeues at the front with its elapsed lifetime preserved.
func (s *Service) FailNode(id string) error {
	ns, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	jobID := ns.jobID
	ns.entry.Unlink()
	delete(s.nodes, id)
	if jobID == "" {
		return nil
	}
	st := s.jobs[jobID]
	for i, nid := range st.nodeIDs {
		if nid == id {
			st.nodeIDs = append(st.nodeIDs[:i], st.nodeIDs[i+1:]...)
			break
		}
	}
	st.job.Replicas = len(st.nodeIDs)
	if len(st.nodeIDs) > 0 {
		if s.cfg.Events.OnScale != nil {
			s.cfg.Events.OnScale(st.job)
		}
		s.schedule() // chase the pre-crash target on remaining capacity
		return nil
	}
	// Last replica lost: the service is down.
	st.finish.Cancel()
	s.accrueLifetime(st)
	st.job.State = framework.JobQueued
	s.running.Remove(st.seq)
	s.states.Remove(st.seq)
	s.queue.PushFront(jobID)
	if s.cfg.Events.OnRequeue != nil {
		s.cfg.Events.OnRequeue(st.job)
	}
	s.schedule()
	return nil
}

// NumNodes implements framework.Framework.
func (s *Service) NumNodes() int { return len(s.nodes) }

// InspectNode implements framework.Inspector: a service node is busy
// while it hosts a replica.
func (s *Service) InspectNode(id string) (framework.NodeStatus, bool) {
	ns, ok := s.nodes[id]
	if !ok {
		return framework.NodeStatus{}, false
	}
	return framework.NodeStatus{
		Busy:     ns.jobID != "",
		Disabled: ns.disabled,
		Cloud:    ns.node.Cloud,
	}, true
}

// VisitNodeJobs implements framework.NodeJobVisitor: a service node
// hosts at most one replica.
func (s *Service) VisitNodeJobs(nodeID string, visit func(jobID string) bool) {
	if ns, ok := s.nodes[nodeID]; ok && ns.jobID != "" {
		visit(ns.jobID)
	}
}

// FreeNodeIDs implements framework.Framework.
func (s *Service) FreeNodeIDs() []string { return s.free.CollectN(nil, -1) }

// FreeNodeCount implements framework.Framework.
func (s *Service) FreeNodeCount(cloud bool) int { return s.free.Count(cloud) }

// VisitFreeNodes implements framework.Framework.
func (s *Service) VisitFreeNodes(cloud bool, visit func(id string) bool) {
	s.free.Visit(cloud, visit)
}

// IdleDisabledNodeIDs implements framework.Framework.
func (s *Service) IdleDisabledNodeIDs() []string { return s.idleDis.CollectN(nil, -1) }

// Submit implements framework.Framework. Service jobs declare contracted
// replicas (VMs), a per-replica capacity (SvcRate) and a lifetime in
// wall seconds (Work); Rate may be nil for a constant zero-load service.
func (s *Service) Submit(j *framework.Job) error {
	if j.ID == "" || j.VMs <= 0 || j.Work <= 0 || j.SvcRate <= 0 {
		return fmt.Errorf("%w: id=%q replicas=%d lifetime=%g rate=%g", ErrBadJob, j.ID, j.VMs, j.Work, j.SvcRate)
	}
	if _, dup := s.jobs[j.ID]; dup {
		return fmt.Errorf("%w: %s", ErrJobExists, j.ID)
	}
	j.State = framework.JobQueued
	j.SubmittedAt = s.eng.Now()
	j.Replicas = 0
	st := &svcState{job: j, seq: s.jobSeq, target: j.VMs}
	s.jobSeq++
	s.jobs[j.ID] = st
	s.queue.PushBack(j.ID)
	s.unsettled++
	s.ensureTicker()
	s.schedule()
	return nil
}

// Suspend implements framework.Framework. All replicas stop (a full
// outage: suspended intervals burn the SLO), the elapsed lifetime is
// preserved, and the nodes free up. The resource selection protocol
// prefers shrinking services over suspending them — this exists for
// interface completeness and drains.
func (s *Service) Suspend(id string) error {
	st, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	j := st.job
	if j.State != framework.JobRunning {
		return fmt.Errorf("%w: %s is %v", ErrJobState, id, j.State)
	}
	st.finish.Cancel()
	s.accrueLifetime(st)
	s.freeNodes(st.nodeIDs)
	st.nodeIDs = nil
	j.Replicas = 0
	j.State = framework.JobSuspended
	j.Suspensions++
	s.running.Remove(st.seq)
	s.states.Remove(st.seq)
	if s.cfg.Events.OnSuspend != nil {
		s.cfg.Events.OnSuspend(j)
	}
	s.schedule()
	return nil
}

// Resume implements framework.Framework. The service restarts at its
// contracted replica count, at the front of the wait queue.
func (s *Service) Resume(id string) error {
	st, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	j := st.job
	if j.State != framework.JobSuspended {
		return fmt.Errorf("%w: %s is %v", ErrJobState, id, j.State)
	}
	j.State = framework.JobQueued
	st.target = j.VMs
	s.queue.PushFront(id)
	if s.cfg.Events.OnResume != nil {
		s.cfg.Events.OnResume(j)
	}
	s.schedule()
	return nil
}

// JobNodes implements framework.Framework.
func (s *Service) JobNodes(id string) ([]string, error) {
	st, ok := s.jobs[id]
	if !ok || st.job.State != framework.JobRunning {
		return nil, fmt.Errorf("%w: %s is not running", ErrJobState, id)
	}
	out := make([]string, len(st.nodeIDs))
	copy(out, st.nodeIDs)
	return out, nil
}

// VisitJobNodes implements framework.Framework: assignment order, which
// is deterministic for a given simulation.
func (s *Service) VisitJobNodes(id string, visit func(id string) bool) error {
	st, ok := s.jobs[id]
	if !ok || st.job.State != framework.JobRunning {
		return fmt.Errorf("%w: %s is not running", ErrJobState, id)
	}
	for _, nid := range st.nodeIDs {
		if !visit(nid) {
			return nil
		}
	}
	return nil
}

// Progress implements framework.Framework: elapsed lifetime over
// contracted lifetime.
func (s *Service) Progress(id string) (float64, error) {
	st, ok := s.jobs[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	j := st.job
	done := j.DoneWork
	if j.State == framework.JobRunning {
		done += sim.ToSeconds(s.eng.Now() - st.startedAt)
	}
	p := done / j.Work
	if p > 1 {
		p = 1
	}
	return p, nil
}

// Get implements framework.Framework.
func (s *Service) Get(id string) (*framework.Job, bool) {
	st, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return st.job, true
}

// Running implements framework.Framework: running jobs in submission
// order. The slice is the maintained internal set; callers must not
// mutate or retain it across state changes.
func (s *Service) Running() []*framework.Job { return s.running.Values() }

// QueuedJobs implements framework.Framework.
func (s *Service) QueuedJobs() []*framework.Job {
	out := make([]*framework.Job, 0, s.queue.Len())
	for i := 0; i < s.queue.Len(); i++ {
		out = append(out, s.jobs[s.queue.At(i)].job)
	}
	return out
}

// SetTargetReplicas steers a running service's elasticity: growth
// happens on the next scheduling pass as free nodes allow; shrinking
// releases replicas immediately (never below one). The Application
// Controller calls this from its latency monitoring loop.
func (s *Service) SetTargetReplicas(id string, n int) error {
	st, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	if st.job.State != framework.JobRunning {
		return fmt.Errorf("%w: %s is %v", ErrJobState, id, st.job.State)
	}
	if n < 1 {
		n = 1
	}
	st.target = n
	if n < len(st.nodeIDs) {
		s.releaseReplicas(st, len(st.nodeIDs)-n)
		if s.cfg.Events.OnScale != nil {
			s.cfg.Events.OnScale(st.job)
		}
		return nil
	}
	s.schedule()
	return nil
}

// Shrink reclaims k replicas from a running service (bid-driven: the
// Cluster Manager prices this as projected SLO-penalty loss). Unlike a
// controller scale-in, it releases private-hosted replicas first —
// reclaimed capacity must be transferable private VMs, and cloud
// leases cannot change VCs. It lowers the target with the size, so the
// service does not immediately re-grow onto the freed nodes; the
// controller raises the target again when latency demands it.
func (s *Service) Shrink(id string, k int) error {
	st, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	if st.job.State != framework.JobRunning {
		return fmt.Errorf("%w: %s is %v", ErrJobState, id, st.job.State)
	}
	if k <= 0 || k > len(st.nodeIDs)-1 {
		return fmt.Errorf("%w: shrink %s by %d with %d replicas", ErrJobState, id, k, len(st.nodeIDs))
	}
	// Newest-first within each kind, private pass before cloud pass.
	for pass := 0; pass < 2 && k > 0; pass++ {
		wantCloud := pass == 1
		for i := len(st.nodeIDs) - 1; i >= 0 && k > 0; i-- {
			nid := st.nodeIDs[i]
			if s.nodes[nid].node.Cloud != wantCloud {
				continue
			}
			st.nodeIDs = append(st.nodeIDs[:i], st.nodeIDs[i+1:]...)
			s.freeNodes([]string{nid})
			k--
		}
	}
	st.job.Replicas = len(st.nodeIDs)
	st.target = len(st.nodeIDs)
	if s.cfg.Events.OnScale != nil {
		s.cfg.Events.OnScale(st.job)
	}
	return nil
}

// ReplicaKinds counts a running service's replica hosts by kind — what
// a reclaim bid checks before promising transferable private VMs.
func (s *Service) ReplicaKinds(id string) (private, cloud int, err error) {
	st, ok := s.jobs[id]
	if !ok || st.job.State != framework.JobRunning {
		return 0, 0, fmt.Errorf("%w: %s is not running", ErrJobState, id)
	}
	for _, nid := range st.nodeIDs {
		if s.nodes[nid].node.Cloud {
			cloud++
		} else {
			private++
		}
	}
	return private, cloud, nil
}

// TargetReplicas returns a service's current target.
func (s *Service) TargetReplicas(id string) (int, error) {
	st, ok := s.jobs[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	return st.target, nil
}

// ServiceStats returns the monitoring view for one service. It is valid
// for any unsettled service; a queued or suspended service reports zero
// replicas and capacity (its burn accounting keeps advancing).
func (s *Service) ServiceStats(id string) (Stats, error) {
	st, ok := s.jobs[id]
	if !ok {
		return Stats{}, fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	out := Stats{
		Replicas:     len(st.nodeIDs),
		Target:       st.target,
		Intervals:    st.intervals,
		Burned:       st.burned,
		PeakReplicas: st.peakReplicas,
	}
	if st.job.State == framework.JobRunning {
		out.OfferedRate = offeredRate(st.job, s.eng.Now())
		out.Capacity = s.capacity(st)
		out.P95 = s.p95(st)
	}
	n := st.windowN
	if n > len(st.window) {
		n = len(st.window)
	}
	for i := 0; i < n; i++ {
		if st.window[i] > out.RollingP95 {
			out.RollingP95 = st.window[i]
		}
	}
	return out, nil
}

// --- internals ---

// offeredRate samples the open-loop arrival process.
func offeredRate(j *framework.Job, t sim.Time) float64 {
	if j.Rate == nil {
		return 0
	}
	r := j.Rate(t)
	if r < 0 {
		return 0
	}
	return r
}

// capacity sums replica service rates over the assigned nodes.
func (s *Service) capacity(st *svcState) float64 {
	c := 0.0
	for _, id := range st.nodeIDs {
		c += st.job.SvcRate * s.nodes[id].node.SpeedFactor
	}
	return c
}

// p95 evaluates the latency model at the current instant: an M/M/1-PS
// aggregate over the replica set. With offered rate λ, aggregate
// capacity C and mean base service time S0 = n/C, the mean sojourn time
// is S0/(1-ρ) for ρ = λ/C < 1, and the 95th percentile of the
// (approximately exponential) sojourn is -ln(0.05) ≈ 3 times that. At
// or beyond saturation the queue grows without bound within the tick,
// reported as +Inf.
func (s *Service) p95(st *svcState) float64 {
	c := s.capacity(st)
	if c <= 0 {
		return math.Inf(1)
	}
	lambda := offeredRate(st.job, s.eng.Now())
	rho := lambda / c
	if rho >= 1 {
		return math.Inf(1)
	}
	s0 := float64(len(st.nodeIDs)) / c
	return 3 * s0 / (1 - rho)
}

// ensureTicker starts the SLO evaluation ticker when unsettled services
// exist; onTick cancels it when the last one settles, so a drained
// framework schedules no events and simulations terminate naturally.
func (s *Service) ensureTicker() {
	if s.tick != nil || s.unsettled == 0 {
		return
	}
	s.tick = s.eng.Every(s.cfg.Tick, s.onTick)
}

// onTick advances SLO accounting for every unsettled service: running
// services evaluate the latency model, queued and suspended services
// burn outright (they are down). Iteration is submission-ordered over
// the full job table, so accounting is deterministic.
func (s *Service) onTick() {
	if s.unsettled == 0 {
		s.tick.Cancel()
		s.tick = nil
		return
	}
	// Running services first (maintained submission order, no scan).
	for _, st := range s.states.Values() {
		p := s.p95(st)
		st.window[st.windowN%len(st.window)] = p
		st.windowN++
		st.intervals++
		if st.job.TargetP95 > 0 && p > st.job.TargetP95 {
			st.burned++
		}
	}
	// Queued services: down, full burn.
	for i := 0; i < s.queue.Len(); i++ {
		st := s.jobs[s.queue.At(i)]
		st.intervals++
		st.burned++
	}
	// Suspended services: down too. Rare (the protocol shrinks services
	// instead of suspending them), so a job-table scan is acceptable —
	// only counters advance, so map order cannot leak into results.
	for _, st := range s.jobs {
		if st.job.State == framework.JobSuspended {
			st.intervals++
			st.burned++
		}
	}
}

// accrueLifetime banks the elapsed wall time of the current execution
// segment into DoneWork.
func (s *Service) accrueLifetime(st *svcState) {
	j := st.job
	j.DoneWork += sim.ToSeconds(s.eng.Now() - st.startedAt)
	if j.DoneWork > j.Work {
		j.DoneWork = j.Work
	}
}

// freeNodes releases replica hosts back to the indexes.
func (s *Service) freeNodes(ids []string) {
	for _, id := range ids {
		ns, ok := s.nodes[id]
		if !ok {
			continue // crashed away
		}
		ns.jobID = ""
		if ns.disabled {
			s.idleDis.Insert(&ns.entry)
		} else {
			s.free.Insert(&ns.entry)
		}
	}
}

// releaseReplicas frees k replicas, newest assignment first — scale-out
// capacity (typically cloud boosts, attached latest) is returned before
// the original footprint.
func (s *Service) releaseReplicas(st *svcState, k int) {
	for ; k > 0 && len(st.nodeIDs) > 0; k-- {
		id := st.nodeIDs[len(st.nodeIDs)-1]
		st.nodeIDs = st.nodeIDs[:len(st.nodeIDs)-1]
		s.freeNodes([]string{id})
	}
	st.job.Replicas = len(st.nodeIDs)
}

// assignReplicas attaches up to k free nodes to the service, attach
// order, and returns how many it got.
func (s *Service) assignReplicas(st *svcState, k int) int {
	got := 0
	for ; k > 0; k-- {
		e := s.free.First()
		if e == nil {
			break
		}
		ns := s.nodes[e.ID()]
		ns.entry.Unlink()
		ns.jobID = st.job.ID
		st.nodeIDs = append(st.nodeIDs, ns.node.ID)
		got++
	}
	st.job.Replicas = len(st.nodeIDs)
	if st.job.Replicas > st.peakReplicas {
		st.peakReplicas = st.job.Replicas
	}
	return got
}

// schedule starts waiting services FIFO while their contracted replicas
// fit, then grows running services toward their targets in submission
// order. Start notifications fire after the service's full initial
// replica set is assigned (the Cluster Manager's segment-open callback
// must see the nodes); growth fires OnScale per changed service.
func (s *Service) schedule() {
	// Phase 1: starts (FIFO, head blocks — a service needs its full
	// contracted replica set to launch).
	for s.queue.Len() > 0 {
		st := s.jobs[s.queue.At(0)]
		if s.free.Len() < st.job.VMs {
			break
		}
		s.queue.RemoveAt(0)
		s.start(st)
	}
	// Phase 2: growth toward targets.
	for _, st := range s.states.Values() {
		if s.free.Len() == 0 {
			break
		}
		if want := st.target - len(st.nodeIDs); want > 0 {
			if s.assignReplicas(st, want) > 0 && s.cfg.Events.OnScale != nil {
				s.cfg.Events.OnScale(st.job)
			}
		}
	}
}

// start launches a service on its contracted replica count.
func (s *Service) start(st *svcState) {
	j := st.job
	s.assignReplicas(st, j.VMs)
	now := s.eng.Now()
	if !j.Started {
		j.Started = true
		j.StartedAt = now
	}
	j.State = framework.JobRunning
	st.startedAt = now
	s.running.Insert(st.seq, j)
	s.states.Insert(st.seq, st)
	remaining := j.Work - j.DoneWork
	st.finish = s.eng.After(sim.Seconds(remaining), func() { s.finishSvc(st) })
	if s.cfg.Events.OnStart != nil {
		s.cfg.Events.OnStart(j)
	}
}

// finishSvc settles a service whose contracted lifetime elapsed.
func (s *Service) finishSvc(st *svcState) {
	j := st.job
	j.State = framework.JobDone
	j.DoneWork = j.Work
	j.FinishedAt = s.eng.Now()
	s.freeNodes(st.nodeIDs)
	st.nodeIDs = nil
	s.running.Remove(st.seq)
	s.states.Remove(st.seq)
	s.unsettled--
	if s.unsettled == 0 && s.tick != nil {
		s.tick.Cancel()
		s.tick = nil
	}
	if s.cfg.Events.OnFinish != nil {
		s.cfg.Events.OnFinish(j)
	}
	s.schedule()
}
