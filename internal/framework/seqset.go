package framework

import (
	"fmt"
	"sort"
)

// SeqSet maintains values ordered by a monotone uint64 sequence key —
// the shape of "running jobs in submission order" and "active jobs in
// submission order". Inserts and removals memmove within amortized
// capacity (no per-call allocation once warm); Values returns the
// maintained slice directly so listing allocates nothing.
type SeqSet[T any] struct {
	vals []T
	seqs []uint64
}

// Len returns the element count.
func (s *SeqSet[T]) Len() int { return len(s.vals) }

// Values returns the maintained slice in seq order. Callers must not
// mutate it or retain it across Insert/Remove calls.
func (s *SeqSet[T]) Values() []T { return s.vals }

// Insert places v at its seq position. Appending the highest seq — the
// common case for submission-ordered sets — touches nothing else.
func (s *SeqSet[T]) Insert(seq uint64, v T) {
	i := sort.Search(len(s.seqs), func(i int) bool { return s.seqs[i] > seq })
	var zero T
	s.vals = append(s.vals, zero)
	s.seqs = append(s.seqs, 0)
	copy(s.vals[i+1:], s.vals[i:])
	copy(s.seqs[i+1:], s.seqs[i:])
	s.vals[i] = v
	s.seqs[i] = seq
}

// Remove drops and returns the value with the given seq; a missing seq
// panics, as it indicates corrupted framework bookkeeping.
func (s *SeqSet[T]) Remove(seq uint64) T {
	i := sort.Search(len(s.seqs), func(i int) bool { return s.seqs[i] >= seq })
	if i == len(s.seqs) || s.seqs[i] != seq {
		panic(fmt.Sprintf("framework: seq set missing %d", seq))
	}
	v := s.vals[i]
	var zero T
	copy(s.vals[i:], s.vals[i+1:])
	copy(s.seqs[i:], s.seqs[i+1:])
	s.vals[len(s.vals)-1] = zero
	s.vals = s.vals[:len(s.vals)-1]
	s.seqs = s.seqs[:len(s.seqs)-1]
	return v
}
