// Package fwtest provides shared invariant checks for framework
// implementations. The batch, MapReduce and service test suites all
// need the same property — the maintained free/idle-disabled node
// indexes must agree with a brute-force recount of the node table —
// and previously each carried its own copy of the check. CheckIndexes
// is the one shared implementation, built on framework.Inspector so it
// needs no access to framework internals; framework-specific extras
// (MapReduce slot accounting) stay in their own suites.
package fwtest

import (
	"fmt"
	"testing"

	"meryn/internal/framework"
)

// Target is the composite interface CheckIndexes drives: the generic
// framework surface plus per-node introspection.
type Target interface {
	framework.Framework
	framework.Inspector
}

// CheckIndexes compares the maintained free/idle-disabled indexes
// against a brute-force recomputation from per-node status, using the
// attach order tracked by the test: FreeNodeIDs and IdleDisabledNodeIDs
// must list exactly the recomputed nodes in attach order, and per-kind
// FreeNodeCount/VisitFreeNodes must agree with the kind-split recount.
func CheckIndexes(t testing.TB, fw Target, attachOrder []string) {
	t.Helper()
	var wantFree, wantIdleDis []string
	wantKind := map[bool][]string{}
	for _, id := range attachOrder {
		st, ok := fw.InspectNode(id)
		if !ok {
			continue // removed or failed
		}
		switch {
		case st.Busy:
		case st.Disabled:
			wantIdleDis = append(wantIdleDis, id)
		default:
			wantFree = append(wantFree, id)
			wantKind[st.Cloud] = append(wantKind[st.Cloud], id)
		}
	}
	if got := fw.FreeNodeIDs(); fmt.Sprint(got) != fmt.Sprint(wantFree) {
		t.Fatalf("FreeNodeIDs = %v, want %v", got, wantFree)
	}
	if got := fw.IdleDisabledNodeIDs(); fmt.Sprint(got) != fmt.Sprint(wantIdleDis) {
		t.Fatalf("IdleDisabledNodeIDs = %v, want %v", got, wantIdleDis)
	}
	for _, cloud := range []bool{false, true} {
		if got := fw.FreeNodeCount(cloud); got != len(wantKind[cloud]) {
			t.Fatalf("FreeNodeCount(%v) = %d, want %d", cloud, got, len(wantKind[cloud]))
		}
		var visited []string
		fw.VisitFreeNodes(cloud, func(id string) bool { visited = append(visited, id); return true })
		if fmt.Sprint(visited) != fmt.Sprint(wantKind[cloud]) {
			t.Fatalf("VisitFreeNodes(%v) = %v, want %v", cloud, visited, wantKind[cloud])
		}
	}
}
