package framework

import (
	"math/rand"
	"testing"
)

func TestDequeFIFO(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 100; i++ {
		d.PushBack(i)
	}
	if d.Len() != 100 {
		t.Fatalf("len = %d", d.Len())
	}
	for i := 0; i < 100; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("len = %d after drain", d.Len())
	}
}

func TestDequeFrontRequeue(t *testing.T) {
	var d Deque[string]
	d.PushBack("a")
	d.PushBack("b")
	d.PushFront("victim") // crash-requeue and resume go to the front
	if got := d.At(0); got != "victim" {
		t.Fatalf("front = %q", got)
	}
	if got := d.PopFront(); got != "victim" {
		t.Fatalf("pop = %q", got)
	}
	if d.At(0) != "a" || d.At(1) != "b" {
		t.Fatalf("rest = %q %q", d.At(0), d.At(1))
	}
}

func TestDequeRemoveAt(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 5; i++ {
		d.PushBack(i)
	}
	if got := d.RemoveAt(2); got != 2 { // backfill removes mid-queue
		t.Fatalf("removed = %d", got)
	}
	want := []int{0, 1, 3, 4}
	for i, w := range want {
		if got := d.At(i); got != w {
			t.Fatalf("at(%d) = %d, want %d", i, got, w)
		}
	}
}

// TestDequeMatchesSliceModel drives random operations against a plain
// slice reference model, exercising ring wraparound and growth.
func TestDequeMatchesSliceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var d Deque[int]
	var model []int
	for op := 0; op < 10000; op++ {
		switch k := rng.Intn(5); {
		case k == 0 || d.Len() == 0:
			v := rng.Int()
			d.PushBack(v)
			model = append(model, v)
		case k == 1:
			v := rng.Int()
			d.PushFront(v)
			model = append([]int{v}, model...)
		case k == 2:
			if got, want := d.PopFront(), model[0]; got != want {
				t.Fatalf("op %d: pop = %d, want %d", op, got, want)
			}
			model = model[1:]
		default:
			i := rng.Intn(len(model))
			if got, want := d.RemoveAt(i), model[i]; got != want {
				t.Fatalf("op %d: removeAt(%d) = %d, want %d", op, i, got, want)
			}
			model = append(model[:i], model[i+1:]...)
		}
		if d.Len() != len(model) {
			t.Fatalf("op %d: len = %d, want %d", op, d.Len(), len(model))
		}
		for i, w := range model {
			if d.At(i) != w {
				t.Fatalf("op %d: at(%d) = %d, want %d", op, i, d.At(i), w)
			}
		}
	}
}

func TestDequeIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range must panic")
		}
	}()
	var d Deque[int]
	d.PushBack(1)
	d.At(1)
}

func TestSeqSetOrderAndRemove(t *testing.T) {
	var s SeqSet[string]
	s.Insert(2, "c")
	s.Insert(0, "a")
	s.Insert(1, "b")
	if got := s.Values(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("values = %v", got)
	}
	if got := s.Remove(1); got != "b" {
		t.Fatalf("removed = %q", got)
	}
	if got := s.Values(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("values = %v", got)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSeqSetRemoveMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("removing a missing seq must panic")
		}
	}()
	var s SeqSet[int]
	s.Insert(1, 10)
	s.Remove(2)
}
