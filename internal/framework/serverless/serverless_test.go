package serverless

import (
	"fmt"
	"math"
	"testing"

	"meryn/internal/framework"
	"meryn/internal/framework/fwtest"
	"meryn/internal/sim"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func addNodes(s *Serverless, n int, speed float64) {
	for i := 0; i < n; i++ {
		s.AddNode(framework.Node{ID: fmt.Sprintf("n%02d", i), SpeedFactor: speed})
	}
}

// fn builds a function job: ceiling instances, rate req/s per instance,
// lifetime seconds, cold-start delay, constant offered load.
func fn(id string, ceiling int, rate, lifetime, cold, offered float64) *framework.Job {
	return &framework.Job{
		ID: id, VMs: ceiling, SvcRate: rate, Work: lifetime,
		ColdStartS: cold, IdleWindowS: 1e9, // no scale-to-zero unless the test wants it
		Rate: func(sim.Time) float64 { return offered },
	}
}

func stats(t *testing.T, s *Serverless, id string) Stats {
	t.Helper()
	st, err := s.FunctionStats(id)
	must(t, err)
	return st
}

func TestFunctionLaunchesColdAndActivates(t *testing.T) {
	eng := sim.NewEngine()
	var started, finished int
	s := New(eng, Config{Name: "fn", Tick: sim.Seconds(10), Events: framework.Events{
		OnStart:  func(*framework.Job) { started++ },
		OnFinish: func(*framework.Job) { finished++ },
	}})
	addNodes(s, 4, 1.0)
	j := fn("f", 4, 10, 600, 5, 5)
	must(t, s.Submit(j))

	// Launches cold: running immediately, but with zero instances — every
	// node stays free until demand arrives.
	if j.State != framework.JobRunning || j.Replicas != 0 || started != 1 {
		t.Fatalf("after submit: state=%v replicas=%d starts=%d, want running/0/1", j.State, j.Replicas, started)
	}
	if free := s.FreeNodeIDs(); len(free) != 4 {
		t.Fatalf("free = %v, want all 4 (cold function holds nothing)", free)
	}

	// The first tick with demand activates it: instances boot cold.
	eng.Run(sim.Seconds(15))
	st := stats(t, s, "f")
	if st.Activations != 1 || st.Instances == 0 || st.ColdStarts == 0 {
		t.Fatalf("after first tick: activations=%d instances=%d coldStarts=%d, want 1/>0/>0",
			st.Activations, st.Instances, st.ColdStarts)
	}
	if st.ColdStartDelayS != float64(st.ColdStarts)*5 {
		t.Fatalf("coldDelay = %g with %d cold starts, want %g",
			st.ColdStartDelayS, st.ColdStarts, float64(st.ColdStarts)*5)
	}

	eng.Run(sim.Seconds(100))
	if got := stats(t, s, "f").Served; got == 0 {
		t.Fatal("no requests served after warm-up")
	}

	end := eng.RunAll()
	if j.State != framework.JobDone || finished != 1 {
		t.Fatalf("state=%v finished=%d, want done/1", j.State, finished)
	}
	if got := sim.ToSeconds(end); got != 600 {
		t.Fatalf("function ended at %.0f s, want the 600 s contracted lifetime", got)
	}
	if free := s.FreeNodeIDs(); len(free) != 4 {
		t.Fatalf("free after finish = %v, want all 4", free)
	}
}

func TestScaleToZeroAndReactivation(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{Tick: sim.Seconds(10)})
	addNodes(s, 4, 1.0)
	// Demand for the first 100 s, a dead gap, then demand again at 300 s.
	j := fn("f", 4, 10, 600, 5, 0)
	j.IdleWindowS = 30
	j.Rate = func(t sim.Time) float64 {
		if t < sim.Seconds(100) || t >= sim.Seconds(300) {
			return 5
		}
		return 0
	}
	must(t, s.Submit(j))

	// Mid-gap: the idle window has elapsed, the fleet is gone and the
	// nodes are back in the free index — zero footprint while idle.
	eng.Run(sim.Seconds(200))
	st := stats(t, s, "f")
	if st.Instances != 0 || st.ZeroScales != 1 || j.Replicas != 0 {
		t.Fatalf("mid-gap: instances=%d zeroScales=%d replicas=%d, want 0/1/0",
			st.Instances, st.ZeroScales, j.Replicas)
	}
	if free := s.FreeNodeIDs(); len(free) != 4 {
		t.Fatalf("free mid-gap = %v, want all 4", free)
	}
	if st.Activations != 1 {
		t.Fatalf("activations = %d, want 1 before the second episode", st.Activations)
	}

	// Demand returns: a second scale-from-zero episode.
	eng.Run(sim.Seconds(320))
	st = stats(t, s, "f")
	if st.Activations != 2 || st.Instances == 0 {
		t.Fatalf("after reactivation: activations=%d instances=%d, want 2/>0", st.Activations, st.Instances)
	}
	eng.RunAll()
	if j.State != framework.JobDone {
		t.Fatalf("state = %v, want done", j.State)
	}
}

func TestColdStartChargedAgainstSLO(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{Tick: sim.Seconds(10)})
	addNodes(s, 2, 1.0)
	// 25 s boot: ticks 10/20/30 burn (all-cold, then booting), tick 40+
	// are clean once the fleet is warm (rho 0.25 => p95 0.4 s).
	j := fn("f", 2, 10, 200, 25, 5)
	j.TargetP95 = 1.0
	must(t, s.Submit(j))

	// Between ticks, mid-boot: the p95 is the remaining boot delay plus
	// the base sojourn — instances assigned at t=10 warm at t=35, so at
	// t=25 requests face 10 s of queueing plus 0.3 s of service.
	eng.Run(sim.Seconds(25))
	st := stats(t, s, "f")
	if st.Warm != 0 || math.Abs(st.P95-10.3) > 1e-9 {
		t.Fatalf("mid-boot: warm=%d p95=%g, want 0 warm and p95 10.3", st.Warm, st.P95)
	}

	eng.Run(sim.Seconds(95))
	st = stats(t, s, "f")
	if st.Burned != 3 {
		t.Fatalf("burned = %d, want exactly the 3 cold ticks charged", st.Burned)
	}
	if st.Intervals != 9 {
		t.Fatalf("intervals = %d, want 9 evaluated ticks", st.Intervals)
	}
	if st.ColdStarts != 2 || st.ColdStartDelayS != 50 {
		t.Fatalf("coldStarts=%d delay=%g, want 2 boots and 50 s charged", st.ColdStarts, st.ColdStartDelayS)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue = %g, want the backlog drained once warm", st.QueueDepth)
	}
}

func TestCanarySplitQuotasAndPromotion(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{Tick: sim.Seconds(10)})
	addNodes(s, 10, 1.0)
	j := fn("f", 10, 10, 600, 0, 10) // instant boot keeps the math exact
	must(t, s.Submit(j))
	must(t, s.SetTargetInstances("f", 10))
	if j.Replicas != 10 {
		t.Fatalf("replicas = %d, want the pinned fleet of 10", j.Replicas)
	}

	// A fresh revision deploys at weight zero and takes nothing.
	must(t, s.DeployRevision("f", "v2"))
	if err := s.DeployRevision("f", "v2"); err == nil {
		t.Fatal("duplicate DeployRevision succeeded")
	}
	revs, err := s.Revisions("f")
	must(t, err)
	if len(revs) != 2 || revs[0].Instances != 10 || revs[1].Instances != 0 || revs[1].Weight != 0 {
		t.Fatalf("after deploy: %+v, want all 10 instances still on rev-1", revs)
	}

	// Canary 90/10: largest-remainder quota moves exactly one instance,
	// and the flip re-boots it — a cold start charged to v2.
	before := stats(t, s, "f").ColdStarts
	must(t, s.SetTrafficSplit("f", map[string]int{"rev-1": 90, "v2": 10}))
	revs, err = s.Revisions("f")
	must(t, err)
	if revs[0].Instances != 9 || revs[1].Instances != 1 {
		t.Fatalf("canary quotas = %d/%d, want 9/1", revs[0].Instances, revs[1].Instances)
	}
	if revs[1].ColdStarts != 1 || stats(t, s, "f").ColdStarts != before+1 {
		t.Fatalf("flip charged %d cold starts to v2 (fn %d->%d), want 1",
			revs[1].ColdStarts, before, stats(t, s, "f").ColdStarts)
	}

	// One tick of traffic splits request tallies 90/10, deterministically.
	// (The tick also lets the autoscaler right-size the pinned fleet —
	// the tally split depends only on weights, not instance counts.)
	eng.Run(sim.Seconds(15))
	revs, err = s.Revisions("f")
	must(t, err)
	if revs[0].Requests != 90 || revs[1].Requests != 10 {
		t.Fatalf("tallies = %g/%g, want 90/10 of the 100 served", revs[0].Requests, revs[1].Requests)
	}

	// Promotion: unnamed revisions drop to zero weight, the whole fleet
	// flips to v2.
	must(t, s.SetTrafficSplit("f", map[string]int{"v2": 100}))
	revs, err = s.Revisions("f")
	must(t, err)
	fleet := stats(t, s, "f").Instances
	if revs[0].Weight != 0 || revs[0].Instances != 0 || revs[1].Instances != fleet || fleet == 0 {
		t.Fatalf("after promote: %+v (fleet %d), want every instance on v2", revs, fleet)
	}

	// Split validation: unknown revision, negative weight, zero sum.
	for name, w := range map[string]map[string]int{
		"unknown":  {"ghost": 100},
		"negative": {"v2": -1},
		"zero-sum": {"v2": 0, "rev-1": 0},
	} {
		if err := s.SetTrafficSplit("f", w); err == nil {
			t.Fatalf("SetTrafficSplit(%s) succeeded, want error", name)
		}
	}
	if err := s.DeployRevision("f", ""); err == nil {
		t.Fatal("empty revision name accepted")
	}

	eng.RunAll()
	if err := s.DeployRevision("f", "v3"); err == nil {
		t.Fatal("DeployRevision on a settled function succeeded")
	}
}

func TestFailNodeNeverRequeues(t *testing.T) {
	eng := sim.NewEngine()
	var scales, requeues int
	s := New(eng, Config{Tick: sim.Seconds(10), Events: framework.Events{
		OnScale:   func(*framework.Job) { scales++ },
		OnRequeue: func(*framework.Job) { requeues++ },
	}})
	addNodes(s, 2, 1.0)
	j := fn("f", 2, 10, 600, 5, 5)
	must(t, s.Submit(j))
	eng.Run(sim.Seconds(25))
	nodes, err := s.JobNodes("f")
	must(t, err)
	if len(nodes) == 0 {
		t.Fatal("no instances to crash")
	}

	// Crash every instance host — including the last one. Unlike a
	// service, the function never requeues: it goes back to cold and the
	// activation queue buffers demand.
	scalesBefore := scales
	for _, id := range nodes {
		must(t, s.FailNode(id))
	}
	if j.State != framework.JobRunning || j.Replicas != 0 {
		t.Fatalf("after losing all instances: state=%v replicas=%d, want running/0", j.State, j.Replicas)
	}
	if requeues != 0 || scales-scalesBefore != len(nodes) {
		t.Fatalf("requeues=%d scales=+%d, want 0 requeues and one OnScale per crash", requeues, scales-scalesBefore)
	}

	// Replacement capacity re-warms it on the next pass.
	servedBefore := stats(t, s, "f").Served
	s.AddNode(framework.Node{ID: "r0", SpeedFactor: 1.0})
	s.AddNode(framework.Node{ID: "r1", SpeedFactor: 1.0})
	eng.Run(sim.Seconds(80))
	st := stats(t, s, "f")
	if st.Instances == 0 || st.Served <= servedBefore {
		t.Fatalf("instances=%d served %g->%g, want service to resume on fresh nodes",
			st.Instances, servedBefore, st.Served)
	}
	eng.RunAll()
	if j.State != framework.JobDone {
		t.Fatalf("state = %v, want done", j.State)
	}
}

func TestShrinkPrivateFirstKeepsOne(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{})
	s.AddNode(framework.Node{ID: "p0", SpeedFactor: 1.0})
	s.AddNode(framework.Node{ID: "p1", SpeedFactor: 1.0})
	s.AddNode(framework.Node{ID: "c0", SpeedFactor: 1.0, Cloud: true})
	s.AddNode(framework.Node{ID: "c1", SpeedFactor: 1.0, Cloud: true})
	j := fn("f", 4, 10, 600, 0, 5)
	must(t, s.Submit(j))
	must(t, s.SetTargetInstances("f", 4))

	// Reclaim takes private hosts first — the transferable VMs — even
	// though the cloud instances are the newest assignments.
	must(t, s.Shrink("f", 2))
	private, cloud, err := s.ReplicaKinds("f")
	must(t, err)
	if private != 0 || cloud != 2 {
		t.Fatalf("kinds after shrink = %d private / %d cloud, want 0/2", private, cloud)
	}
	if tgt, _ := s.TargetInstances("f"); tgt != 2 {
		t.Fatalf("target = %d, want lowered to 2 so the autoscaler cannot re-grab", tgt)
	}
	free := s.FreeNodeIDs()
	if len(free) != 2 || free[0] != "p0" || free[1] != "p1" {
		t.Fatalf("freed = %v, want the private hosts [p0 p1]", free)
	}

	// Never fully cold by reclaim: at least one instance survives.
	if err := s.Shrink("f", 2); err == nil {
		t.Fatal("Shrink to zero instances succeeded")
	}
	must(t, s.Shrink("f", 1)) // falls through to the cloud pass
	private, cloud, err = s.ReplicaKinds("f")
	must(t, err)
	if private != 0 || cloud != 1 {
		t.Fatalf("kinds = %d/%d, want the single surviving cloud instance", private, cloud)
	}
}

func TestInstanceCapThrottlesAutoscaler(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{Tick: sim.Seconds(10)})
	addNodes(s, 8, 1.0)
	// Offered 50 req/s against 10 req/s instances wants a large fleet.
	j := fn("f", 8, 10, 600, 0, 50)
	must(t, s.Submit(j))
	must(t, s.SetInstanceCap("f", 2))

	eng.Run(sim.Seconds(100))
	st := stats(t, s, "f")
	if st.Instances > 2 || st.Target > 2 {
		t.Fatalf("instances=%d target=%d under cap 2, want the throttle to hold", st.Instances, st.Target)
	}

	// Removing the cap lets the autoscaler chase demand again.
	must(t, s.SetInstanceCap("f", 0))
	eng.Run(sim.Seconds(150))
	if st := stats(t, s, "f"); st.Instances <= 2 {
		t.Fatalf("instances = %d after cap removal, want growth beyond 2", st.Instances)
	}

	// An over-cap fleet shrinks immediately when a cap lands.
	must(t, s.SetInstanceCap("f", 1))
	if st := stats(t, s, "f"); st.Instances != 1 {
		t.Fatalf("instances = %d right after cap 1, want immediate shrink", st.Instances)
	}
}

func TestSuspendResumeColdRestart(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{Tick: sim.Seconds(10)})
	addNodes(s, 2, 1.0)
	j := fn("f", 2, 10, 600, 5, 5)
	j.TargetP95 = 1.0
	must(t, s.Submit(j))
	eng.Run(sim.Seconds(200))

	must(t, s.Suspend("f"))
	if j.State != framework.JobSuspended || j.DoneWork != 200 || j.Replicas != 0 {
		t.Fatalf("suspend: state=%v done=%g replicas=%d, want suspended/200/0", j.State, j.DoneWork, j.Replicas)
	}
	if free := s.FreeNodeIDs(); len(free) != 2 {
		t.Fatalf("free after suspend = %v, want both nodes back", free)
	}
	if err := s.Suspend("f"); err == nil {
		t.Fatal("double Suspend succeeded")
	}

	// A suspended function with offered demand is down: every tick burns.
	st := stats(t, s, "f")
	eng.Run(sim.Seconds(300))
	st2 := stats(t, s, "f")
	if st2.Burned-st.Burned != st2.Intervals-st.Intervals || st2.Intervals == st.Intervals {
		t.Fatalf("suspended burn: +%d burned over +%d intervals, want every interval burned",
			st2.Burned-st.Burned, st2.Intervals-st.Intervals)
	}

	// Resume restarts cold; lifetime is preserved, so the 100 s gap
	// pushes completion from 600 to 700.
	must(t, s.Resume("f"))
	end := eng.RunAll()
	if j.State != framework.JobDone {
		t.Fatalf("state = %v, want done", j.State)
	}
	if got := sim.ToSeconds(end); got != 700 {
		t.Fatalf("ended at %.0f s, want 700 (400 s remaining after resume)", got)
	}
}

func TestSubmitValidationAndDefaults(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{Tick: sim.Seconds(10)})
	cases := []*framework.Job{
		{ID: "", VMs: 1, SvcRate: 1, Work: 10},
		{ID: "a", VMs: 0, SvcRate: 1, Work: 10},
		{ID: "b", VMs: 1, SvcRate: 0, Work: 10},
		{ID: "c", VMs: 1, SvcRate: 1, Work: 0},
		{ID: "d", VMs: 1, SvcRate: 1, Work: 10, ColdStartS: -1},
	}
	for _, j := range cases {
		if err := s.Submit(j); err == nil {
			t.Fatalf("Submit(%+v) succeeded, want error", j)
		}
	}

	// Defaults: concurrency target 1, idle window 6 ticks, revision
	// "rev-1" holding all traffic — and the function runs without any
	// nodes, because cold needs nothing.
	j := &framework.Job{ID: "ok", VMs: 1, SvcRate: 1, Work: 10}
	must(t, s.Submit(j))
	if j.ConcTarget != 1 || j.IdleWindowS != 60 || j.Revision != "rev-1" {
		t.Fatalf("defaults: conc=%g idle=%g rev=%q, want 1/60/rev-1", j.ConcTarget, j.IdleWindowS, j.Revision)
	}
	if j.State != framework.JobRunning || j.Replicas != 0 {
		t.Fatalf("state=%v replicas=%d, want running cold with zero nodes attached", j.State, j.Replicas)
	}
	revs, err := s.Revisions("ok")
	must(t, err)
	if len(revs) != 1 || revs[0].Name != "rev-1" || revs[0].Weight != 100 {
		t.Fatalf("initial revisions = %+v, want rev-1 at weight 100", revs)
	}
	if err := s.Submit(&framework.Job{ID: "ok", VMs: 1, SvcRate: 1, Work: 10}); err == nil {
		t.Fatal("duplicate Submit succeeded")
	}
}

// TestFreeNodeIndexConsistency drives the index through every node/job
// transition — add, cold launch, pinned growth, shrink, canary flips,
// disable, suspend, resume, a crash mid-cold-start, remove, finish —
// verifying the maintained free/idle-disabled indexes against a full
// rescan after each step, the same fwtest lifecycle check the batch,
// mapreduce and service suites run.
func TestFreeNodeIndexConsistency(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{Tick: sim.Seconds(10)})
	var attachOrder []string
	add := func(id string, cloud bool) {
		s.AddNode(framework.Node{ID: id, SpeedFactor: 1.0, Cloud: cloud})
		attachOrder = append(attachOrder, id)
	}
	check := func(step string) {
		t.Helper()
		fwtest.CheckIndexes(t, s, attachOrder)
		if t.Failed() {
			t.Fatalf("inconsistent after %s", step)
		}
	}

	add("p0", false)
	add("c0", true)
	add("p1", false)
	add("c1", true)
	add("p2", false)
	check("add 5 nodes")

	// Functions launch cold: registering grabs no nodes at all.
	j1 := fn("f1", 4, 10, 1000, 5, 5)
	must(t, s.Submit(j1))
	j2 := fn("f2", 1, 10, 1000, 5, 5)
	must(t, s.Submit(j2))
	if s.free.Len() != 5 {
		t.Fatalf("free = %d after two cold launches, want all 5", s.free.Len())
	}
	check("cold launch f1 f2")

	must(t, s.SetTargetInstances("f1", 2)) // boots p0, c0
	must(t, s.SetTargetInstances("f2", 1)) // boots p1
	check("pin fleets")

	must(t, s.SetTargetInstances("f1", 4)) // grows onto c1, p2
	if j1.Replicas != 4 {
		t.Fatalf("f1 replicas = %d, want 4", j1.Replicas)
	}
	check("grow f1 to 4")

	// Canary ops move instances between revisions but never touch the
	// node indexes — hosts stay busy through a flip.
	must(t, s.DeployRevision("f1", "v2"))
	must(t, s.SetTrafficSplit("f1", map[string]int{"rev-1": 75, "v2": 25}))
	check("canary split f1")

	must(t, s.Shrink("f1", 2)) // private first: releases p2, then p0
	free := s.FreeNodeIDs()
	if len(free) != 2 || free[0] != "p0" || free[1] != "p2" {
		t.Fatalf("freed = %v, want the private hosts [p0 p2]", free)
	}
	check("shrink f1 to 2")

	must(t, s.DisableNode("p2")) // free -> idle-disabled
	must(t, s.DisableNode("c1")) // hosts an instance: stays out of both
	must(t, s.DisableNode("c1")) // idempotent
	check("disable idle and busy")

	must(t, s.Suspend("f1")) // frees c0 (enabled) and c1 (disabled)
	check("suspend f1")

	must(t, s.Resume("f1")) // re-registers cold: no nodes taken
	if j1.State != framework.JobRunning || j1.Replicas != 0 {
		t.Fatalf("resumed f1: state=%v replicas=%d, want running cold", j1.State, j1.Replicas)
	}
	check("resume f1 cold")

	// Re-pin two instances (p0, c0 in attach order), then crash one
	// mid-cold-start: the 5 s boot has not elapsed, the host vanishes,
	// and the function keeps running on what remains.
	must(t, s.SetTargetInstances("f1", 2))
	check("re-pin f1")
	must(t, s.FailNode("p0"))
	attachOrder = []string{"c0", "p1", "c1", "p2"}
	if j1.State != framework.JobRunning || j1.Replicas != 1 {
		t.Fatalf("after mid-boot crash: state=%v replicas=%d, want running/1", j1.State, j1.Replicas)
	}
	check("fail p0 mid-cold-start")

	must(t, s.RemoveNode("p2")) // idle-disabled node drained away
	attachOrder = []string{"c0", "p1", "c1"}
	check("remove p2")

	eng.RunAll() // both functions run out their lifetimes
	if j1.State != framework.JobDone || j2.State != framework.JobDone {
		t.Fatalf("states = %v/%v, want done/done", j1.State, j2.State)
	}
	check("run to completion")
}

func TestTickerStopsWhenDrained(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{Tick: sim.Seconds(10)})
	addNodes(s, 2, 1.0)
	must(t, s.Submit(fn("f", 2, 10, 100, 5, 5)))
	eng.RunAll()
	if s.tick != nil {
		t.Fatal("ticker still armed after the last function settled")
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending events = %d, want drained queue", eng.Pending())
	}
}

func TestRunningListSubmissionOrder(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{})
	addNodes(s, 3, 1.0)
	for _, id := range []string{"fn-2", "fn-10", "fn-1"} {
		must(t, s.Submit(fn(id, 1, 10, 500, 0, 1)))
	}
	got := s.Running()
	if len(got) != 3 || got[0].ID != "fn-2" || got[1].ID != "fn-10" || got[2].ID != "fn-1" {
		ids := make([]string, len(got))
		for i, j := range got {
			ids[i] = j.ID
		}
		t.Fatalf("Running() = %v, want submission order [fn-2 fn-10 fn-1]", ids)
	}
}
