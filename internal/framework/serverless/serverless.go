// Package serverless implements a request-driven function framework —
// the fourth hosted framework family after batch, mapreduce and
// service, closing the open-platform gap the paper's §3 extensibility
// argument leaves widest: workloads whose resource footprint is zero
// between requests.
//
// A function job registers for a contracted lifetime (Job.Work seconds
// of wall time) but, unlike a service, launches with zero instances:
// requests arriving while the function is cold buffer in an activation
// queue until an instance finishes booting (Job.ColdStartS seconds
// between node assignment and readiness). The per-tick latency model
// extends the service framework's M/M/1-PS aggregate with a boot-delay
// term: ticks served entirely from the activation queue report the
// remaining boot delay as their p95, so cold starts burn SLO intervals
// exactly like saturation does — the "cold-start charged against the
// SLO" rule the economics layer prices.
//
// Autoscaling is concurrency-based (Knative-shape): each tick the
// framework sizes the fleet to hold Job.ConcTarget in-flight requests
// per warm instance, adds capacity to drain any activation backlog
// within one tick, doubles the fleet under panic (backlog exceeding
// what the warm fleet can hold in flight), and scales to zero after
// Job.IdleWindowS seconds without demand. The instance ceiling is the
// contracted Job.VMs.
//
// Revisions are immutable: a function starts with one revision holding
// all traffic; DeployRevision adds a new revision at weight zero and
// SetTrafficSplit moves traffic between revisions (canary 90/10,
// promote, roll back). Instances are partitioned across revisions by
// largest-remainder quota and per-tick request tallies split by
// weight — both deterministic, no randomness anywhere.
//
// Scheduler state is indexed exactly like batch and service: free and
// idle-disabled nodes live in intrusive attach-ordered sets
// (framework.NodeIndex), the wait queue is a ring deque, and the
// running set is a maintained submission-ordered SeqSet — so the PR-2
// index invariants and the fwtest lifecycle checks carry over.
package serverless

import (
	"errors"
	"fmt"
	"math"

	"meryn/internal/framework"
	"meryn/internal/sim"
)

// Errors returned by the serverless framework.
var (
	ErrNodeExists  = errors.New("serverless: node already attached")
	ErrNodeUnknown = errors.New("serverless: unknown node")
	ErrNodeBusy    = errors.New("serverless: node hosts an instance")
	ErrJobExists   = errors.New("serverless: job already submitted")
	ErrJobUnknown  = errors.New("serverless: unknown job")
	ErrJobState    = errors.New("serverless: job is not in a valid state for this operation")
	ErrBadJob      = errors.New("serverless: invalid job description")
	ErrRevision    = errors.New("serverless: invalid revision operation")
)

type nodeState struct {
	node     framework.Node
	disabled bool
	jobID    string // "" when hosting no instance
	rev      int    // revision index the instance runs, valid when jobID != ""
	warmAt   sim.Time
	entry    framework.IndexEntry
}

// revision is one immutable deployment of a function.
type revision struct {
	name      string
	weight    int // traffic weight; shares are weight / Σ weights
	createdAt sim.Time

	instances  int     // current instances pinned to this revision
	requests   float64 // cumulative requests routed
	coldStarts int
}

// fnState is the framework's per-function bookkeeping.
type fnState struct {
	job *framework.Job
	seq uint64 // submission order

	target  int      // desired instances; schedule() grows toward it
	cap     int      // autoscaler ceiling override; 0 = the contracted VMs
	nodeIDs []string // instance nodes in assignment order

	startedAt sim.Time   // current execution segment start
	finish    *sim.Timer // fires when the remaining lifetime elapses

	// Activation queue: requests buffered while no warm capacity exists
	// (fluid model, advanced once per tick).
	queue      float64
	lastActive sim.Time // last tick that saw demand
	panicUntil sim.Time // panic-mode expiry; zero when calm

	revs []*revision

	// SLO accounting, advanced once per evaluated tick (ticks with
	// demand; idle ticks are vacuously clean and not counted).
	intervals int
	burned    int
	window    [rollingWindow]float64
	windowN   int

	peakReplicas int
	coldStarts   int
	coldDelayS   float64 // total boot delay charged, seconds
	activations  int     // scale-from-zero transitions
	zeroScales   int     // scale-to-zero transitions
	served       float64 // cumulative requests served
}

// rollingWindow matches the service framework: enough per-tick p95
// history to smooth one-tick blips without hiding a building burst.
const rollingWindow = 6

// panicFactor and panicTicks tune burst scaling: when the activation
// backlog exceeds panicFactor × ConcTarget × warm instances, the fleet
// doubles and refuses to scale down for panicTicks ticks.
const (
	panicFactor = 2.0
	panicTicks  = 6
)

// Stats is the monitoring view one function exposes to its Application
// Controller and to the experiment harness.
type Stats struct {
	Instances int // current instance count (warm + booting)
	Warm      int // instances past their boot delay
	Target    int // desired instance count

	OfferedRate float64 // requests/s arriving now
	Capacity    float64 // requests/s the warm instances absorb
	QueueDepth  float64 // requests buffered in the activation queue
	P95         float64 // latest per-tick p95 response time [s]
	RollingP95  float64 // max p95 over the rolling window [s]

	Intervals    int // SLO intervals evaluated (ticks with demand)
	Burned       int // intervals with p95 over target (or all-cold)
	PeakReplicas int

	ColdStarts      int     // instance boots
	ColdStartDelayS float64 // total boot delay charged [s]
	Activations     int     // scale-from-zero transitions
	ZeroScales      int     // scale-to-zero transitions
	Served          float64 // cumulative requests served
}

// RevisionStats is the per-revision monitoring view.
type RevisionStats struct {
	Name       string
	Weight     int
	Instances  int
	Requests   float64
	ColdStarts int
	CreatedAtS float64
}

// Config configures a serverless framework instance.
type Config struct {
	Name   string
	Image  string
	Events framework.Events

	// Tick is the evaluation interval: how often arrivals are drained
	// through the fluid model, p95 recomputed, burn accounted and the
	// autoscaler stepped (default 10 s).
	Tick sim.Time
}

// Serverless is the scale-to-zero function framework. It implements
// framework.Framework.
type Serverless struct {
	eng   *sim.Engine
	cfg   Config
	nodes map[string]*nodeState

	attachSeq uint64
	free      framework.NodeIndex // enabled nodes hosting no instance
	idleDis   framework.NodeIndex // disabled nodes hosting no instance

	jobs   map[string]*fnState
	jobSeq uint64
	queue  framework.Deque[string] // functions waiting to register (transient)

	running framework.SeqSet[*framework.Job]
	states  framework.SeqSet[*fnState]

	unsettled int
	tick      *sim.Timer
}

var _ framework.Framework = (*Serverless)(nil)
var _ framework.Inspector = (*Serverless)(nil)

// New returns an empty serverless framework.
func New(eng *sim.Engine, cfg Config) *Serverless {
	if cfg.Name == "" {
		cfg.Name = "serverless"
	}
	if cfg.Image == "" {
		cfg.Image = cfg.Name + ".img"
	}
	if cfg.Tick <= 0 {
		cfg.Tick = sim.Seconds(10)
	}
	return &Serverless{
		eng:   eng,
		cfg:   cfg,
		nodes: make(map[string]*nodeState),
		jobs:  make(map[string]*fnState),
	}
}

// Name implements framework.Framework.
func (s *Serverless) Name() string { return s.cfg.Name }

// Image implements framework.Framework.
func (s *Serverless) Image() string { return s.cfg.Image }

// Tick returns the evaluation interval.
func (s *Serverless) Tick() sim.Time { return s.cfg.Tick }

// AddNode implements framework.Framework. New capacity immediately
// feeds under-target growth (cold starts waiting on nodes).
func (s *Serverless) AddNode(n framework.Node) {
	if _, dup := s.nodes[n.ID]; dup {
		panic(fmt.Sprintf("%v: %s", ErrNodeExists, n.ID))
	}
	if n.SpeedFactor <= 0 {
		n.SpeedFactor = 1.0
	}
	ns := &nodeState{node: n}
	ns.entry.Init(n.ID, s.attachSeq, n.Cloud)
	s.attachSeq++
	s.nodes[n.ID] = ns
	s.free.Insert(&ns.entry)
	s.schedule()
}

// DisableNode implements framework.Framework. A disabled node hosting
// an instance keeps serving until the function scales in or finishes.
func (s *Serverless) DisableNode(id string) error {
	ns, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	if !ns.disabled {
		ns.disabled = true
		if ns.jobID == "" {
			ns.entry.Unlink()
			s.idleDis.Insert(&ns.entry)
		}
	}
	return nil
}

// RemoveNode implements framework.Framework.
func (s *Serverless) RemoveNode(id string) error {
	ns, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	if ns.jobID != "" {
		return fmt.Errorf("%w: %s hosts an instance of %s", ErrNodeBusy, id, ns.jobID)
	}
	ns.entry.Unlink()
	delete(s.nodes, id)
	return nil
}

// FailNode implements framework.Framework. Losing an instance — warm or
// still booting — never takes the function down: requests buffer in the
// activation queue and the autoscaler re-boots capacity on the next
// pass. Even the last warm instance crashing only sends the function
// back to cold (an OnScale notification re-opens accounting at the
// smaller node set); there is no requeue path.
func (s *Serverless) FailNode(id string) error {
	ns, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	jobID := ns.jobID
	ns.entry.Unlink()
	delete(s.nodes, id)
	if jobID == "" {
		return nil
	}
	st := s.jobs[jobID]
	for i, nid := range st.nodeIDs {
		if nid == id {
			st.nodeIDs = append(st.nodeIDs[:i], st.nodeIDs[i+1:]...)
			break
		}
	}
	st.revs[ns.rev].instances--
	st.job.Replicas = len(st.nodeIDs)
	if s.cfg.Events.OnScale != nil {
		s.cfg.Events.OnScale(st.job)
	}
	s.schedule() // chase the pre-crash target on remaining capacity
	return nil
}

// NumNodes implements framework.Framework.
func (s *Serverless) NumNodes() int { return len(s.nodes) }

// InspectNode implements framework.Inspector: a serverless node is busy
// while it hosts an instance (booting instances hold their node).
func (s *Serverless) InspectNode(id string) (framework.NodeStatus, bool) {
	ns, ok := s.nodes[id]
	if !ok {
		return framework.NodeStatus{}, false
	}
	return framework.NodeStatus{
		Busy:     ns.jobID != "",
		Disabled: ns.disabled,
		Cloud:    ns.node.Cloud,
	}, true
}

// VisitNodeJobs implements framework.NodeJobVisitor: a serverless node
// hosts at most one function instance.
func (s *Serverless) VisitNodeJobs(nodeID string, visit func(jobID string) bool) {
	if ns, ok := s.nodes[nodeID]; ok && ns.jobID != "" {
		visit(ns.jobID)
	}
}

// FreeNodeIDs implements framework.Framework.
func (s *Serverless) FreeNodeIDs() []string { return s.free.CollectN(nil, -1) }

// FreeNodeCount implements framework.Framework.
func (s *Serverless) FreeNodeCount(cloud bool) int { return s.free.Count(cloud) }

// VisitFreeNodes implements framework.Framework.
func (s *Serverless) VisitFreeNodes(cloud bool, visit func(id string) bool) {
	s.free.Visit(cloud, visit)
}

// IdleDisabledNodeIDs implements framework.Framework.
func (s *Serverless) IdleDisabledNodeIDs() []string { return s.idleDis.CollectN(nil, -1) }

// Submit implements framework.Framework. Function jobs declare an
// instance ceiling (VMs), a per-instance capacity (SvcRate), a lifetime
// in wall seconds (Work) and the serverless shape (ColdStartS,
// ConcTarget, IdleWindowS). The function registers immediately — no
// nodes are required to launch, because it launches cold.
func (s *Serverless) Submit(j *framework.Job) error {
	if j.ID == "" || j.VMs <= 0 || j.Work <= 0 || j.SvcRate <= 0 || j.ColdStartS < 0 {
		return fmt.Errorf("%w: id=%q max=%d lifetime=%g rate=%g cold=%g",
			ErrBadJob, j.ID, j.VMs, j.Work, j.SvcRate, j.ColdStartS)
	}
	if _, dup := s.jobs[j.ID]; dup {
		return fmt.Errorf("%w: %s", ErrJobExists, j.ID)
	}
	if j.ConcTarget <= 0 {
		j.ConcTarget = 1
	}
	if j.IdleWindowS <= 0 {
		j.IdleWindowS = 6 * sim.ToSeconds(s.cfg.Tick)
	}
	if j.Revision == "" {
		j.Revision = "rev-1"
	}
	j.State = framework.JobQueued
	j.SubmittedAt = s.eng.Now()
	j.Replicas = 0
	st := &fnState{
		job:  j,
		seq:  s.jobSeq,
		revs: []*revision{{name: j.Revision, weight: 100, createdAt: s.eng.Now()}},
	}
	s.jobSeq++
	s.jobs[j.ID] = st
	s.queue.PushBack(j.ID)
	s.unsettled++
	s.ensureTicker()
	s.schedule()
	return nil
}

// Suspend implements framework.Framework. All instances stop, the
// elapsed lifetime is preserved, and the nodes free up. Exists for
// interface completeness and drains — reclaim shrinks functions
// instead.
func (s *Serverless) Suspend(id string) error {
	st, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	j := st.job
	if j.State != framework.JobRunning {
		return fmt.Errorf("%w: %s is %v", ErrJobState, id, j.State)
	}
	st.finish.Cancel()
	s.accrueLifetime(st)
	s.freeNodes(st.nodeIDs)
	st.nodeIDs = nil
	for _, r := range st.revs {
		r.instances = 0
	}
	st.target = 0
	j.Replicas = 0
	j.State = framework.JobSuspended
	j.Suspensions++
	s.running.Remove(st.seq)
	s.states.Remove(st.seq)
	if s.cfg.Events.OnSuspend != nil {
		s.cfg.Events.OnSuspend(j)
	}
	s.schedule()
	return nil
}

// Resume implements framework.Framework. The function re-registers
// cold: zero instances, the activation queue intact, demand re-warms
// it.
func (s *Serverless) Resume(id string) error {
	st, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	j := st.job
	if j.State != framework.JobSuspended {
		return fmt.Errorf("%w: %s is %v", ErrJobState, id, j.State)
	}
	j.State = framework.JobQueued
	st.target = 0
	s.queue.PushFront(id)
	if s.cfg.Events.OnResume != nil {
		s.cfg.Events.OnResume(j)
	}
	s.schedule()
	return nil
}

// JobNodes implements framework.Framework.
func (s *Serverless) JobNodes(id string) ([]string, error) {
	st, ok := s.jobs[id]
	if !ok || st.job.State != framework.JobRunning {
		return nil, fmt.Errorf("%w: %s is not running", ErrJobState, id)
	}
	out := make([]string, len(st.nodeIDs))
	copy(out, st.nodeIDs)
	return out, nil
}

// VisitJobNodes implements framework.Framework: assignment order. A
// cold running function visits nothing — zero instances, zero usage.
func (s *Serverless) VisitJobNodes(id string, visit func(id string) bool) error {
	st, ok := s.jobs[id]
	if !ok || st.job.State != framework.JobRunning {
		return fmt.Errorf("%w: %s is not running", ErrJobState, id)
	}
	for _, nid := range st.nodeIDs {
		if !visit(nid) {
			return nil
		}
	}
	return nil
}

// Progress implements framework.Framework: elapsed lifetime over
// contracted lifetime.
func (s *Serverless) Progress(id string) (float64, error) {
	st, ok := s.jobs[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	j := st.job
	done := j.DoneWork
	if j.State == framework.JobRunning {
		done += sim.ToSeconds(s.eng.Now() - st.startedAt)
	}
	p := done / j.Work
	if p > 1 {
		p = 1
	}
	return p, nil
}

// Get implements framework.Framework.
func (s *Serverless) Get(id string) (*framework.Job, bool) {
	st, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return st.job, true
}

// Running implements framework.Framework.
func (s *Serverless) Running() []*framework.Job { return s.running.Values() }

// QueuedJobs implements framework.Framework. Functions register
// immediately, so the queue is transient; this exists for the
// interface.
func (s *Serverless) QueuedJobs() []*framework.Job {
	out := make([]*framework.Job, 0, s.queue.Len())
	for i := 0; i < s.queue.Len(); i++ {
		out = append(out, s.jobs[s.queue.At(i)].job)
	}
	return out
}

// SetTargetInstances overrides the fleet target of a running function —
// the Application Controller's lever, and the only scale path that may
// go to zero explicitly. The per-tick autoscaler keeps steering after
// an override; this pins the fleet until the next tick.
func (s *Serverless) SetTargetInstances(id string, n int) error {
	st, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	if st.job.State != framework.JobRunning {
		return fmt.Errorf("%w: %s is %v", ErrJobState, id, st.job.State)
	}
	if n < 0 {
		n = 0
	}
	if n > st.job.VMs {
		n = st.job.VMs
	}
	s.retarget(st, n)
	return nil
}

// Shrink reclaims k instances from a running function (bid-driven: the
// Cluster Manager prices this as projected cold-start SLO-burn).
// Private-hosted instances go first — reclaimed capacity must be
// transferable private VMs. At least one instance stays: reclaim never
// forces a warm function fully cold.
func (s *Serverless) Shrink(id string, k int) error {
	st, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	if st.job.State != framework.JobRunning {
		return fmt.Errorf("%w: %s is %v", ErrJobState, id, st.job.State)
	}
	if k <= 0 || k > len(st.nodeIDs)-1 {
		return fmt.Errorf("%w: shrink %s by %d with %d instances", ErrJobState, id, k, len(st.nodeIDs))
	}
	for pass := 0; pass < 2 && k > 0; pass++ {
		wantCloud := pass == 1
		for i := len(st.nodeIDs) - 1; i >= 0 && k > 0; i-- {
			nid := st.nodeIDs[i]
			if s.nodes[nid].node.Cloud != wantCloud {
				continue
			}
			st.revs[s.nodes[nid].rev].instances--
			st.nodeIDs = append(st.nodeIDs[:i], st.nodeIDs[i+1:]...)
			s.freeNodes([]string{nid})
			k--
		}
	}
	st.job.Replicas = len(st.nodeIDs)
	st.target = len(st.nodeIDs)
	s.rebalance(st)
	if s.cfg.Events.OnScale != nil {
		s.cfg.Events.OnScale(st.job)
	}
	return nil
}

// ReplicaKinds counts a running function's instance hosts by kind —
// what a reclaim bid checks before promising transferable private VMs.
func (s *Serverless) ReplicaKinds(id string) (private, cloud int, err error) {
	st, ok := s.jobs[id]
	if !ok || st.job.State != framework.JobRunning {
		return 0, 0, fmt.Errorf("%w: %s is not running", ErrJobState, id)
	}
	for _, nid := range st.nodeIDs {
		if s.nodes[nid].node.Cloud {
			cloud++
		} else {
			private++
		}
	}
	return private, cloud, nil
}

// TargetInstances returns a function's current fleet target.
func (s *Serverless) TargetInstances(id string) (int, error) {
	st, ok := s.jobs[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	return st.target, nil
}

// DeployRevision adds an immutable revision at traffic weight zero; a
// SetTrafficSplit call moves traffic onto it (the canary step). Valid
// while the function is unsettled; revision names are unique per
// function.
func (s *Serverless) DeployRevision(id, name string) error {
	st, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	if st.job.State == framework.JobDone {
		return fmt.Errorf("%w: %s is done", ErrJobState, id)
	}
	if name == "" {
		return fmt.Errorf("%w: empty revision name", ErrRevision)
	}
	for _, r := range st.revs {
		if r.name == name {
			return fmt.Errorf("%w: revision %q already exists for %s", ErrRevision, name, id)
		}
	}
	st.revs = append(st.revs, &revision{name: name, createdAt: s.eng.Now()})
	return nil
}

// SetTrafficSplit reassigns traffic weights across a function's
// revisions. Every named revision must exist, weights are non-negative
// and must sum positive; revisions not named drop to zero. Instances
// repartition to the new quotas immediately — an instance flipped to a
// different revision re-boots (a cold start on the new revision's
// image), which is what makes an aggressive canary visible in the
// latency accounting.
func (s *Serverless) SetTrafficSplit(id string, weights map[string]int) error {
	st, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	if st.job.State == framework.JobDone {
		return fmt.Errorf("%w: %s is done", ErrJobState, id)
	}
	total := 0
	for name, w := range weights {
		if w < 0 {
			return fmt.Errorf("%w: negative weight %d for %q", ErrRevision, w, name)
		}
		found := false
		for _, r := range st.revs {
			if r.name == name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%w: unknown revision %q for %s", ErrRevision, name, id)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("%w: traffic weights sum to zero", ErrRevision)
	}
	for _, r := range st.revs {
		r.weight = weights[r.name]
	}
	s.rebalance(st)
	return nil
}

// Revisions returns the per-revision monitoring view in deploy order.
func (s *Serverless) Revisions(id string) ([]RevisionStats, error) {
	st, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	out := make([]RevisionStats, len(st.revs))
	for i, r := range st.revs {
		out[i] = RevisionStats{
			Name:       r.name,
			Weight:     r.weight,
			Instances:  r.instances,
			Requests:   r.requests,
			ColdStarts: r.coldStarts,
			CreatedAtS: sim.ToSeconds(r.createdAt),
		}
	}
	return out, nil
}

// FunctionStats returns the monitoring view for one function.
func (s *Serverless) FunctionStats(id string) (Stats, error) {
	st, ok := s.jobs[id]
	if !ok {
		return Stats{}, fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	out := Stats{
		Instances:       len(st.nodeIDs),
		Target:          st.target,
		QueueDepth:      st.queue,
		Intervals:       st.intervals,
		Burned:          st.burned,
		PeakReplicas:    st.peakReplicas,
		ColdStarts:      st.coldStarts,
		ColdStartDelayS: st.coldDelayS,
		Activations:     st.activations,
		ZeroScales:      st.zeroScales,
		Served:          st.served,
	}
	if st.job.State == framework.JobRunning {
		now := s.eng.Now()
		warmN, warmCap := s.warmCapacity(st, now)
		out.Warm = warmN
		out.Capacity = warmCap
		out.OfferedRate = offeredRate(st.job, now)
		out.P95 = s.p95(st, out.OfferedRate, warmN, warmCap, now)
	}
	n := st.windowN
	if n > len(st.window) {
		n = len(st.window)
	}
	for i := 0; i < n; i++ {
		if st.window[i] > out.RollingP95 {
			out.RollingP95 = st.window[i]
		}
	}
	return out, nil
}

// --- internals ---

// offeredRate samples the open-loop arrival process.
func offeredRate(j *framework.Job, t sim.Time) float64 {
	if j.Rate == nil {
		return 0
	}
	r := j.Rate(t)
	if r < 0 {
		return 0
	}
	return r
}

// warmCapacity counts instances past their boot delay and sums their
// service rates.
func (s *Serverless) warmCapacity(st *fnState, now sim.Time) (int, float64) {
	n, c := 0, 0.0
	for _, id := range st.nodeIDs {
		ns := s.nodes[id]
		if ns.warmAt <= now {
			n++
			c += st.job.SvcRate * ns.node.SpeedFactor
		}
	}
	return n, c
}

// earliestWarm returns the soonest readiness time among booting
// instances, or false when none is booting.
func (s *Serverless) earliestWarm(st *fnState, now sim.Time) (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, id := range st.nodeIDs {
		ns := s.nodes[id]
		if ns.warmAt > now && (!found || ns.warmAt < best) {
			best = ns.warmAt
			found = true
		}
	}
	return best, found
}

// p95 evaluates the latency model at the current instant: the service
// framework's M/M/1-PS aggregate over the *warm* instance set, extended
// with a boot-delay term. Ticks with demand but no warm capacity report
// the remaining boot delay of the earliest booting instance plus the
// base sojourn — requests wait in the activation queue for exactly that
// long — or +Inf when nothing is booting (cold with no capacity on the
// way within this tick).
func (s *Serverless) p95(st *fnState, lambda float64, warmN int, warmCap float64, now sim.Time) float64 {
	demand := lambda > 0 || st.queue > 0
	if warmCap <= 0 {
		if !demand {
			return 0
		}
		if at, ok := s.earliestWarm(st, now); ok {
			return sim.ToSeconds(at-now) + 3.0/st.job.SvcRate
		}
		return math.Inf(1)
	}
	rho := lambda / warmCap
	if rho >= 1 {
		return math.Inf(1)
	}
	s0 := float64(warmN) / warmCap
	return 3 * s0 / (1 - rho)
}

// ensureTicker starts the evaluation ticker while unsettled functions
// exist; onTick cancels it when the last one settles.
func (s *Serverless) ensureTicker() {
	if s.tick != nil || s.unsettled == 0 {
		return
	}
	s.tick = s.eng.Every(s.cfg.Tick, s.onTick)
}

// onTick advances the fluid request model, SLO accounting and the
// autoscaler for every running function, in submission order. Suspended
// functions with demand burn outright (they are down).
func (s *Serverless) onTick() {
	if s.unsettled == 0 {
		s.tick.Cancel()
		s.tick = nil
		return
	}
	now := s.eng.Now()
	tickS := sim.ToSeconds(s.cfg.Tick)
	for _, st := range s.states.Values() {
		s.stepFn(st, now, tickS)
	}
	// Suspended functions: down; ticks with offered demand burn. Only
	// counters advance, so the map-order scan cannot leak into results.
	for _, st := range s.jobs {
		if st.job.State == framework.JobSuspended && offeredRate(st.job, now) > 0 {
			st.intervals++
			st.burned++
		}
	}
}

// stepFn advances one running function by one tick: drain arrivals
// through the warm fleet, account the SLO, then steer the fleet.
func (s *Serverless) stepFn(st *fnState, now sim.Time, tickS float64) {
	j := st.job
	lambda := offeredRate(j, now)
	arrivals := lambda * tickS
	demand := arrivals + st.queue
	warmN, warmCap := s.warmCapacity(st, now)

	// Evaluate the latency model before serving: the p95 reflects the
	// state requests arriving this tick experience.
	p := s.p95(st, lambda, warmN, warmCap, now)
	if demand > 0 {
		st.window[st.windowN%len(st.window)] = p
		st.windowN++
		st.intervals++
		if j.TargetP95 > 0 && (math.IsInf(p, 1) || p > j.TargetP95) {
			st.burned++
		}
	}

	// Fluid drain: warm capacity serves the backlog plus arrivals.
	served := demand
	if lim := warmCap * tickS; served > lim {
		served = lim
	}
	st.queue = demand - served
	if st.queue < 1e-9 {
		st.queue = 0
	}
	if served > 0 {
		st.served += served
		s.tally(st, served)
	}
	if demand > 0 {
		st.lastActive = now
	}

	s.autoscale(st, lambda, demand, warmN, now, tickS)
}

// tally splits served requests across revisions by traffic weight.
func (s *Serverless) tally(st *fnState, served float64) {
	total := 0
	for _, r := range st.revs {
		total += r.weight
	}
	if total <= 0 {
		return
	}
	for _, r := range st.revs {
		if r.weight > 0 {
			r.requests += served * float64(r.weight) / float64(total)
		}
	}
}

// autoscale is the per-tick concurrency autoscaler. Demand sizing uses
// Little's law: holding ConcTarget requests in flight per M/M/1-PS
// instance means running each at utilization ConcTarget/(1+ConcTarget),
// so the calm fleet is ceil(λ / (μ·u*)) plus whatever drains the
// activation backlog within one tick. Panic mode doubles the fleet and
// holds the floor while it lasts; an idle window scales to zero.
func (s *Serverless) autoscale(st *fnState, lambda, demand float64, warmN int, now sim.Time, tickS float64) {
	j := st.job
	cur := len(st.nodeIDs)
	desired := 0
	if demand > 0 {
		mu := j.SvcRate
		uStar := j.ConcTarget / (1 + j.ConcTarget)
		desired = int(math.Ceil(lambda / (mu * uStar)))
		if st.queue > 0 {
			desired += int(math.Ceil(st.queue / (mu * tickS)))
		}
		if desired < 1 {
			desired = 1
		}
		// Panic: the backlog exceeds what the warm fleet can hold in
		// flight — double immediately and refuse to scale down.
		hold := float64(warmN) * j.ConcTarget
		if warmN == 0 {
			hold = j.ConcTarget
		}
		if st.queue > panicFactor*hold {
			st.panicUntil = now + panicTicks*s.cfg.Tick
		}
		if now < st.panicUntil {
			if 2*cur > desired {
				desired = 2 * cur
			}
			if desired < 1 {
				desired = 1
			}
		}
		if cur == 0 && st.target == 0 && desired > 0 {
			st.activations++ // scale-from-zero transition, once per episode
		}
	} else if cur > 0 {
		if now-st.lastActive >= sim.Seconds(j.IdleWindowS) {
			desired = 0 // scale to zero
			st.zeroScales++
			st.panicUntil = 0
		} else {
			desired = cur // hold through the idle window
		}
	}
	if desired > j.VMs {
		desired = j.VMs
	}
	if st.cap > 0 && desired > st.cap {
		desired = st.cap
	}
	s.retarget(st, desired)
}

// SetInstanceCap clamps a function's autoscaler below the contracted
// ceiling — the Application Controller's cost-cap throttle. The cap
// holds until changed (0 removes it); an over-cap fleet shrinks
// immediately.
func (s *Serverless) SetInstanceCap(id string, n int) error {
	st, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	if n < 0 {
		n = 0
	}
	st.cap = n
	if st.job.State == framework.JobRunning && n > 0 && len(st.nodeIDs) > n {
		s.retarget(st, n)
	}
	return nil
}

// retarget moves the fleet toward n: shrink releases newest-first
// immediately, growth goes through the scheduler as free nodes allow.
func (s *Serverless) retarget(st *fnState, n int) {
	st.target = n
	if n < len(st.nodeIDs) {
		s.releaseInstances(st, len(st.nodeIDs)-n)
		s.rebalance(st)
		if s.cfg.Events.OnScale != nil {
			s.cfg.Events.OnScale(st.job)
		}
		return
	}
	if n > len(st.nodeIDs) {
		s.schedule()
	}
}

// accrueLifetime banks the elapsed wall time of the current execution
// segment into DoneWork.
func (s *Serverless) accrueLifetime(st *fnState) {
	j := st.job
	j.DoneWork += sim.ToSeconds(s.eng.Now() - st.startedAt)
	if j.DoneWork > j.Work {
		j.DoneWork = j.Work
	}
}

// freeNodes releases instance hosts back to the indexes.
func (s *Serverless) freeNodes(ids []string) {
	for _, id := range ids {
		ns, ok := s.nodes[id]
		if !ok {
			continue // crashed away
		}
		ns.jobID = ""
		if ns.disabled {
			s.idleDis.Insert(&ns.entry)
		} else {
			s.free.Insert(&ns.entry)
		}
	}
}

// releaseInstances frees k instances, newest assignment first.
func (s *Serverless) releaseInstances(st *fnState, k int) {
	for ; k > 0 && len(st.nodeIDs) > 0; k-- {
		id := st.nodeIDs[len(st.nodeIDs)-1]
		st.nodeIDs = st.nodeIDs[:len(st.nodeIDs)-1]
		st.revs[s.nodes[id].rev].instances--
		s.freeNodes([]string{id})
	}
	st.job.Replicas = len(st.nodeIDs)
}

// assignInstances attaches up to k free nodes as booting instances,
// attach order, and returns how many it got. Every assignment is a cold
// start: the instance serves nothing until ColdStartS elapses, and the
// boot delay is charged to the function and its revision.
func (s *Serverless) assignInstances(st *fnState, k int) int {
	got := 0
	now := s.eng.Now()
	for ; k > 0; k-- {
		e := s.free.First()
		if e == nil {
			break
		}
		ns := s.nodes[e.ID()]
		ns.entry.Unlink()
		ns.jobID = st.job.ID
		ns.rev = s.neediestRev(st)
		ns.warmAt = now + sim.Seconds(st.job.ColdStartS)
		st.revs[ns.rev].instances++
		st.revs[ns.rev].coldStarts++
		st.coldStarts++
		st.coldDelayS += st.job.ColdStartS
		st.nodeIDs = append(st.nodeIDs, ns.node.ID)
		got++
	}
	st.job.Replicas = len(st.nodeIDs)
	if st.job.Replicas > st.peakReplicas {
		st.peakReplicas = st.job.Replicas
	}
	return got
}

// quotas partitions n instances across revisions by traffic weight,
// largest remainder, ties to the older revision — deterministic.
func (st *fnState) quotas(n int) []int {
	out := make([]int, len(st.revs))
	total := 0
	for _, r := range st.revs {
		total += r.weight
	}
	if total <= 0 || n <= 0 {
		return out
	}
	assigned := 0
	type frac struct {
		idx int
		rem int
	}
	fracs := make([]frac, 0, len(st.revs))
	for i, r := range st.revs {
		q := n * r.weight
		out[i] = q / total
		assigned += out[i]
		fracs = append(fracs, frac{idx: i, rem: q % total})
	}
	for left := n - assigned; left > 0; left-- {
		best := -1
		for _, f := range fracs {
			// Zero-weight revisions never round up: a revision with no
			// traffic holds no instances.
			if st.revs[f.idx].weight == 0 {
				continue
			}
			if best < 0 || f.rem > fracs[best].rem {
				best = f.idx
			}
		}
		if best < 0 {
			break
		}
		out[best]++
		fracs[best].rem = -1
	}
	return out
}

// neediestRev picks the revision with the largest quota deficit for the
// fleet one instance larger — where the next instance belongs.
func (s *Serverless) neediestRev(st *fnState) int {
	q := st.quotas(len(st.nodeIDs) + 1)
	best, bestDeficit := 0, math.MinInt32
	for i, r := range st.revs {
		if d := q[i] - r.instances; d > bestDeficit {
			best, bestDeficit = i, d
		}
	}
	return best
}

// rebalance repartitions existing instances to the current quotas after
// a traffic-split change or shrink: over-quota revisions yield their
// newest instances to under-quota ones. A flipped instance re-boots on
// the new revision's image — a cold start charged like any other.
func (s *Serverless) rebalance(st *fnState) {
	q := st.quotas(len(st.nodeIDs))
	now := s.eng.Now()
	for i := range st.revs {
		for st.revs[i].instances < q[i] {
			donor := -1
			for d := range st.revs {
				if st.revs[d].instances > q[d] {
					donor = d
					break
				}
			}
			if donor < 0 {
				return
			}
			// Newest instance of the donor revision flips.
			for k := len(st.nodeIDs) - 1; k >= 0; k-- {
				ns := s.nodes[st.nodeIDs[k]]
				if ns.rev != donor {
					continue
				}
				st.revs[donor].instances--
				ns.rev = i
				ns.warmAt = now + sim.Seconds(st.job.ColdStartS)
				st.revs[i].instances++
				st.revs[i].coldStarts++
				st.coldStarts++
				st.coldDelayS += st.job.ColdStartS
				break
			}
		}
	}
}

// schedule registers waiting functions (no capacity needed — they
// launch cold), then grows running fleets toward their targets in
// submission order.
func (s *Serverless) schedule() {
	for s.queue.Len() > 0 {
		st := s.jobs[s.queue.At(0)]
		s.queue.RemoveAt(0)
		s.start(st)
	}
	for _, st := range s.states.Values() {
		if s.free.Len() == 0 {
			break
		}
		if want := st.target - len(st.nodeIDs); want > 0 {
			if s.assignInstances(st, want) > 0 && s.cfg.Events.OnScale != nil {
				s.cfg.Events.OnScale(st.job)
			}
		}
	}
}

// start registers a function: running, cold, zero instances. The first
// tick with demand activates it.
func (s *Serverless) start(st *fnState) {
	j := st.job
	now := s.eng.Now()
	if !j.Started {
		j.Started = true
		j.StartedAt = now
	}
	j.State = framework.JobRunning
	st.startedAt = now
	st.lastActive = now
	s.running.Insert(st.seq, j)
	s.states.Insert(st.seq, st)
	remaining := j.Work - j.DoneWork
	st.finish = s.eng.After(sim.Seconds(remaining), func() { s.finishFn(st) })
	if s.cfg.Events.OnStart != nil {
		s.cfg.Events.OnStart(j)
	}
}

// finishFn settles a function whose contracted lifetime elapsed.
func (s *Serverless) finishFn(st *fnState) {
	j := st.job
	j.State = framework.JobDone
	j.DoneWork = j.Work
	j.FinishedAt = s.eng.Now()
	s.freeNodes(st.nodeIDs)
	st.nodeIDs = nil
	for _, r := range st.revs {
		r.instances = 0
	}
	s.running.Remove(st.seq)
	s.states.Remove(st.seq)
	s.unsettled--
	if s.unsettled == 0 && s.tick != nil {
		s.tick.Cancel()
		s.tick = nil
	}
	if s.cfg.Events.OnFinish != nil {
		s.cfg.Events.OnFinish(j)
	}
	s.schedule()
}
