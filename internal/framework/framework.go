// Package framework defines the boundary between Meryn and the
// programming frameworks it hosts (OGE, Hadoop in the paper's prototype).
// The interface deliberately exposes only what the paper assumes an
// unmodified framework can do — add/remove/drain nodes, submit jobs,
// suspend/resume jobs, report progress — because Meryn's extensibility
// argument (§2) rests on leaving framework internals untouched.
//
// Concrete implementations live in the batch (OGE-like) and mapreduce
// (Hadoop-like) subpackages.
package framework

import (
	"fmt"

	"meryn/internal/sim"
)

// Node is a compute slave attached to a framework: a private VM or a
// leased cloud VM. Frameworks index nodes by kind so the Cluster Manager
// can count and visit free nodes of one kind without rescanning, but
// they must never make scheduling decisions on it — that distinction
// belongs to the Cluster Manager.
type Node struct {
	ID          string
	SpeedFactor float64 // relative CPU speed; execution time = work / speed
	Cloud       bool    // indexed for the Cluster Manager; no scheduling on it
}

// JobState is the lifecycle of a framework job.
type JobState int

// Job lifecycle states.
const (
	JobQueued JobState = iota
	JobRunning
	JobSuspended
	JobDone
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobSuspended:
		return "suspended"
	case JobDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Job is a framework-level work unit, produced by the Cluster Manager's
// template translation (§3.3). Batch frameworks use VMs and Work;
// MapReduce frameworks use the task fields; the service framework uses
// the service shape fields.
type Job struct {
	ID  string
	VMs int // dedicated nodes (batch) / contracted replicas (service)

	// Work is the job's size in reference CPU-seconds: execution time on
	// a SpeedFactor-1.0 node. Used by batch frameworks. The service
	// framework reuses it as the contracted service lifetime in wall
	// seconds (services elapse in real time, not CPU time).
	Work float64

	// MapReduce shape (used by the mapreduce framework).
	MapTasks    int
	ReduceTasks int
	MapWork     float64 // reference seconds per map task
	ReduceWork  float64 // reference seconds per reduce task

	// Service shape (used by the service framework). A service runs one
	// replica per node; the framework maintains Replicas as the current
	// replica count (it starts at VMs and changes with elastic scaling).
	// The serverless framework reuses the same fields with shifted
	// meanings: VMs is the contracted instance ceiling, Replicas the
	// current instance count (it starts at zero and scales with demand),
	// and Work the registered function lifetime in wall seconds.
	Replicas  int                      // current replicas, framework-maintained
	SvcRate   float64                  // requests/s one replica serves at SpeedFactor 1.0
	TargetP95 float64                  // p95 latency objective in seconds (0 = untracked)
	Rate      func(t sim.Time) float64 // offered request rate (open-loop arrivals)

	// Serverless shape (used by the serverless framework, in addition
	// to the service fields above).
	ColdStartS  float64 // boot delay before a fresh instance serves, seconds
	ConcTarget  float64 // autoscaler target: in-flight requests per warm instance
	IdleWindowS float64 // idle seconds before the function scales to zero
	Revision    string  // name of the initial (immutable) revision

	// Lifecycle, maintained by the framework.
	State       JobState
	SubmittedAt sim.Time
	Started     bool     // the job has begun executing at least once
	StartedAt   sim.Time // first time the job began executing
	FinishedAt  sim.Time
	Suspensions int

	// DoneWork is accumulated completed reference-seconds, preserved
	// across suspensions (batch: whole-job progress; mapreduce: completed
	// task work).
	DoneWork float64
}

// Events are the notifications a framework emits. All callbacks are
// optional. They fire synchronously inside the simulation event that
// caused them.
type Events struct {
	OnStart   func(*Job) // job began (or re-began after resume) executing
	OnFinish  func(*Job)
	OnSuspend func(*Job)
	OnResume  func(*Job) // job re-entered the queue after Resume
	OnRequeue func(*Job) // job lost its nodes involuntarily (node failure)
	// OnScale fires when a running job's node set changes without a
	// lifecycle transition (elastic replica growth or shrink, or losing
	// one node of many to a crash). The job keeps running; callers use it
	// to re-open cost/usage accounting segments at the new node set.
	OnScale func(*Job)
}

// NodeStatus is a framework's introspective view of one attached node.
// It exists for invariant auditing: the platform Auditor and the fwtest
// helpers recount index state (free lists, idle-disabled lists,
// per-kind counts) from per-node status and compare against the
// maintained indexes. Busy means the node currently hosts work: a batch
// job, at least one MapReduce task slot, or a service replica.
type NodeStatus struct {
	Busy     bool
	Disabled bool
	Cloud    bool
}

// Inspector is implemented by frameworks that expose per-node status
// for auditing. All framework implementations in this repository do;
// the Auditor degrades gracefully (skips index recounts) for ones that
// do not.
type Inspector interface {
	// InspectNode reports the status of an attached node, or false if
	// the node is not attached.
	InspectNode(id string) (NodeStatus, bool)
}

// NodeJobVisitor is implemented by frameworks that can enumerate the
// running jobs occupying one node without scanning unrelated jobs —
// the inverse of VisitJobNodes. The platform uses it on node loss
// (crash, revocation) to find the hit applications directly; without
// it, the caller falls back to visiting every running job's node set.
type NodeJobVisitor interface {
	// VisitNodeJobs calls visit for each distinct running job occupying
	// the node, in a deterministic order (submission order in this
	// repository's frameworks), stopping early when visit returns false.
	// Unknown node IDs visit nothing.
	VisitNodeJobs(nodeID string, visit func(jobID string) bool)
}

// Framework is what the Cluster Manager's generic part drives. All
// methods are synchronous in simulated time; real-world latencies (VM
// boot, daemon configuration) are charged by the callers that wrap them.
type Framework interface {
	// Name identifies the framework instance (e.g. "batch-vc1").
	Name() string
	// Image is the VM disk image slaves of this framework boot from.
	Image() string

	// AddNode attaches a slave node.
	AddNode(Node)
	// DisableNode drains a node: running work continues, but the
	// scheduler stops assigning new work to it. Used before removal.
	DisableNode(id string) error
	// RemoveNode detaches an idle node. It fails if the node is busy.
	RemoveNode(id string) error
	// FailNode forcibly detaches a node (VM crash). Work running on it
	// is lost: batch jobs requeue with their last checkpoint, MapReduce
	// jobs lose the in-flight tasks on that node.
	FailNode(id string) error
	// NumNodes returns the number of attached nodes.
	NumNodes() int
	// FreeNodeIDs lists enabled nodes with no work assigned, in attach
	// order. It allocates; hot paths should use FreeNodeCount or
	// VisitFreeNodes instead.
	FreeNodeIDs() []string
	// FreeNodeCount returns the number of free nodes of one kind
	// (cloud or private) without allocating.
	FreeNodeCount(cloud bool) int
	// VisitFreeNodes calls visit for each free node of one kind in
	// attach order, stopping early when visit returns false. The
	// framework must not be mutated during the visit.
	VisitFreeNodes(cloud bool, visit func(id string) bool)
	// IdleDisabledNodeIDs lists disabled nodes with no work assigned
	// (ready for removal), in attach order.
	IdleDisabledNodeIDs() []string

	// Submit enqueues a job.
	Submit(*Job) error
	// Suspend checkpoints a running job and frees its nodes.
	Suspend(id string) error
	// Resume re-queues a suspended job with priority.
	Resume(id string) error
	// JobNodes lists the node IDs a running job occupies.
	JobNodes(id string) ([]string, error)
	// VisitJobNodes calls visit for each node a running job occupies,
	// stopping early when visit returns false — the allocation-free
	// variant of JobNodes. The visit order is framework-specific but
	// deterministic for a given simulation (floating-point aggregation
	// over a run-dependent order would break reproducibility); callers
	// must not rely on any particular order.
	VisitJobNodes(id string, visit func(id string) bool) error
	// Progress returns completed fraction in [0,1].
	Progress(id string) (float64, error)
	// Get looks a job up.
	Get(id string) (*Job, bool)
	// Running lists running jobs in submission order. The returned
	// slice is owned by the framework: callers must not mutate it or
	// retain it across calls that change job state.
	Running() []*Job
	// QueuedJobs lists queued jobs in queue order.
	QueuedJobs() []*Job
}
