package batch

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"meryn/internal/framework"
	"meryn/internal/framework/fwtest"
	"meryn/internal/sim"
)

func addNodes(b *Batch, n int, speed float64) {
	for i := 0; i < n; i++ {
		b.AddNode(framework.Node{ID: fmt.Sprintf("n%02d", i), SpeedFactor: speed})
	}
}

func job(id string, vms int, work float64) *framework.Job {
	return &framework.Job{ID: id, VMs: vms, Work: work}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	eng := sim.NewEngine()
	var started, finished []*framework.Job
	b := New(eng, Config{Name: "vc1", Events: framework.Events{
		OnStart:  func(j *framework.Job) { started = append(started, j) },
		OnFinish: func(j *framework.Job) { finished = append(finished, j) },
	}})
	addNodes(b, 1, 1.0)
	j := job("a", 1, 1550)
	if err := b.Submit(j); err != nil {
		t.Fatal(err)
	}
	eng.RunAll()
	if len(started) != 1 || len(finished) != 1 {
		t.Fatalf("events: started=%d finished=%d", len(started), len(finished))
	}
	if j.State != framework.JobDone {
		t.Fatalf("state = %v", j.State)
	}
	if j.FinishedAt != sim.Seconds(1550) {
		t.Fatalf("FinishedAt = %v, want 1550s", j.FinishedAt)
	}
	if p, _ := b.Progress("a"); p != 1 {
		t.Fatalf("progress = %v", p)
	}
}

func TestSpeedFactorScalesExecTime(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{})
	// Cloud-like slower node: 1550 reference seconds -> ~1670 wall.
	b.AddNode(framework.Node{ID: "c0", SpeedFactor: 1550.0 / 1670.0, Cloud: true})
	j := job("a", 1, 1550)
	if err := b.Submit(j); err != nil {
		t.Fatal(err)
	}
	eng.RunAll()
	got := sim.ToSeconds(j.FinishedAt)
	if math.Abs(got-1670) > 0.001 {
		t.Fatalf("cloud exec = %v s, want 1670 s", got)
	}
}

func TestFIFOQueueing(t *testing.T) {
	eng := sim.NewEngine()
	var order []string
	b := New(eng, Config{Events: framework.Events{
		OnStart: func(j *framework.Job) { order = append(order, j.ID) },
	}})
	addNodes(b, 1, 1.0)
	for _, id := range []string{"a", "b", "c"} {
		if err := b.Submit(job(id, 1, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if len(b.QueuedJobs()) != 2 {
		t.Fatalf("queued = %d, want 2", len(b.QueuedJobs()))
	}
	eng.RunAll()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("start order = %v", order)
	}
	// Sequential on one node: finish at 100, 200, 300.
	jc, _ := b.Get("c")
	if jc.FinishedAt != sim.Seconds(300) {
		t.Fatalf("c finished at %v", jc.FinishedAt)
	}
}

func TestMultiVMJobScalesAtMinSpeed(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{})
	b.AddNode(framework.Node{ID: "fast", SpeedFactor: 2.0})
	b.AddNode(framework.Node{ID: "slow", SpeedFactor: 0.5})
	j := job("a", 2, 100)
	if err := b.Submit(j); err != nil {
		t.Fatal(err)
	}
	eng.RunAll()
	// 100 reference seconds over 2 nodes at the slowest speed 0.5:
	// 100 / (2 * 0.5) = 100 s.
	if j.FinishedAt != sim.Seconds(100) {
		t.Fatalf("FinishedAt = %v, want 100s", j.FinishedAt)
	}
}

func TestMultiVMSuspendResumePreservesScaledWork(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{})
	addNodes(b, 2, 1.0)
	j := job("a", 2, 1000) // 500 s wall on 2 nodes
	must(t, b.Submit(j))
	eng.Run(sim.Seconds(200))
	must(t, b.Suspend("a"))
	if j.DoneWork != 400 { // 200 s * 2 nodes * speed 1.0
		t.Fatalf("DoneWork = %v, want 400", j.DoneWork)
	}
	must(t, b.Resume("a"))
	eng.RunAll()
	if j.FinishedAt != sim.Seconds(500) {
		t.Fatalf("FinishedAt = %v, want 500s", j.FinishedAt)
	}
}

func TestFIFOHeadBlocks(t *testing.T) {
	eng := sim.NewEngine()
	var order []string
	b := New(eng, Config{Events: framework.Events{
		OnStart: func(j *framework.Job) { order = append(order, j.ID) },
	}})
	addNodes(b, 2, 1.0)
	must(t, b.Submit(job("big", 2, 100)))
	must(t, b.Submit(job("huge", 3, 100))) // can never run with 2 nodes... blocks
	must(t, b.Submit(job("small", 1, 100)))
	eng.Run(sim.Seconds(500))
	// Strict FIFO: small must NOT start because huge blocks the head.
	if len(order) != 1 || order[0] != "big" {
		t.Fatalf("order = %v, want only big", order)
	}
}

func TestBackfillSkipsBlockedHead(t *testing.T) {
	eng := sim.NewEngine()
	var order []string
	b := New(eng, Config{Backfill: true, Events: framework.Events{
		OnStart: func(j *framework.Job) { order = append(order, j.ID) },
	}})
	addNodes(b, 2, 1.0)
	must(t, b.Submit(job("big", 2, 100)))
	must(t, b.Submit(job("huge", 3, 100)))
	must(t, b.Submit(job("small", 1, 100)))
	eng.Run(sim.Seconds(500))
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("order = %v, want [big small]", order)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubmitValidation(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{})
	if err := b.Submit(job("", 1, 10)); !errors.Is(err, ErrBadJob) {
		t.Fatalf("err = %v", err)
	}
	if err := b.Submit(job("a", 0, 10)); !errors.Is(err, ErrBadJob) {
		t.Fatalf("err = %v", err)
	}
	if err := b.Submit(job("a", 1, 0)); !errors.Is(err, ErrBadJob) {
		t.Fatalf("err = %v", err)
	}
	must(t, b.Submit(job("a", 1, 10)))
	if err := b.Submit(job("a", 1, 10)); !errors.Is(err, ErrJobExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestSuspendPreservesProgress(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{})
	addNodes(b, 1, 1.0)
	j := job("a", 1, 1000)
	must(t, b.Submit(j))
	eng.Run(sim.Seconds(400))
	must(t, b.Suspend("a"))
	if j.State != framework.JobSuspended {
		t.Fatalf("state = %v", j.State)
	}
	if math.Abs(j.DoneWork-400) > 1e-9 {
		t.Fatalf("DoneWork = %v, want 400", j.DoneWork)
	}
	if j.Suspensions != 1 {
		t.Fatalf("Suspensions = %d", j.Suspensions)
	}
	if p, _ := b.Progress("a"); math.Abs(p-0.4) > 1e-9 {
		t.Fatalf("progress = %v, want 0.4", p)
	}
	// Node is free again.
	if len(b.FreeNodeIDs()) != 1 {
		t.Fatal("suspended job did not free its node")
	}
	// Resume: runs the remaining 600s.
	must(t, b.Resume("a"))
	eng.RunAll()
	if j.State != framework.JobDone {
		t.Fatalf("state = %v", j.State)
	}
	if j.FinishedAt != sim.Seconds(1000) { // 400 run + suspended instant + 600 run
		t.Fatalf("FinishedAt = %v, want 1000s", j.FinishedAt)
	}
	if j.StartedAt != 0 {
		t.Fatalf("StartedAt = %v, want first start time 0", j.StartedAt)
	}
}

func TestSuspendFreedNodesGoToQueuedJobs(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{})
	addNodes(b, 1, 1.0)
	must(t, b.Submit(job("victim", 1, 1000)))
	must(t, b.Submit(job("waiter", 1, 100)))
	eng.Run(sim.Seconds(100))
	must(t, b.Suspend("victim"))
	w, _ := b.Get("waiter")
	if w.State != framework.JobRunning {
		t.Fatalf("waiter state = %v, want running after suspension freed the node", w.State)
	}
}

func TestResumePriority(t *testing.T) {
	eng := sim.NewEngine()
	var order []string
	b := New(eng, Config{Events: framework.Events{
		OnStart: func(j *framework.Job) { order = append(order, j.ID) },
	}})
	addNodes(b, 1, 1.0)
	must(t, b.Submit(job("victim", 1, 1000)))
	eng.Run(sim.Seconds(100))
	must(t, b.Suspend("victim"))
	must(t, b.Submit(job("later", 1, 100)))
	// "later" grabbed the free node; on resume, victim must queue ahead
	// of anything submitted afterwards.
	must(t, b.Submit(job("latest", 1, 100)))
	must(t, b.Resume("victim"))
	eng.RunAll()
	want := []string{"victim", "later", "victim", "latest"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("start order = %v, want %v", order, want)
	}
}

func TestSuspendStateErrors(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{})
	addNodes(b, 1, 1.0)
	if err := b.Suspend("ghost"); !errors.Is(err, ErrJobUnknown) {
		t.Fatalf("err = %v", err)
	}
	must(t, b.Submit(job("a", 2, 100))) // queued (needs 2 nodes, has 1)
	if err := b.Suspend("a"); !errors.Is(err, ErrJobState) {
		t.Fatalf("suspend queued: err = %v", err)
	}
	if err := b.Resume("a"); !errors.Is(err, ErrJobState) {
		t.Fatalf("resume queued: err = %v", err)
	}
	if err := b.Resume("ghost"); !errors.Is(err, ErrJobUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestNodeManagement(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{})
	addNodes(b, 2, 1.0)
	if b.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", b.NumNodes())
	}
	must(t, b.Submit(job("a", 1, 1000)))
	// n00 is busy; removing it must fail, removing n01 must work.
	if err := b.RemoveNode("n00"); !errors.Is(err, ErrNodeBusy) {
		t.Fatalf("err = %v", err)
	}
	must(t, b.RemoveNode("n01"))
	if b.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d", b.NumNodes())
	}
	if err := b.RemoveNode("nope"); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("err = %v", err)
	}
	if err := b.DisableNode("nope"); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestAddDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	b := New(sim.NewEngine(), Config{})
	b.AddNode(framework.Node{ID: "x"})
	b.AddNode(framework.Node{ID: "x"})
}

func TestDisabledNodeNotScheduled(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{})
	addNodes(b, 2, 1.0)
	must(t, b.DisableNode("n01"))
	must(t, b.Submit(job("a", 1, 100)))
	must(t, b.Submit(job("b", 1, 100)))
	eng.Run(sim.Seconds(50))
	// Only n00 is schedulable, so "b" must still be queued.
	if len(b.QueuedJobs()) != 1 {
		t.Fatalf("queued = %d, want 1", len(b.QueuedJobs()))
	}
	ids := b.IdleDisabledNodeIDs()
	if len(ids) != 1 || ids[0] != "n01" {
		t.Fatalf("IdleDisabledNodeIDs = %v", ids)
	}
}

func TestDrainFlowForVMExchange(t *testing.T) {
	// The Cluster Manager flow from paper §3.4: disable the victim's
	// nodes, suspend the victim, then remove the now-idle nodes.
	eng := sim.NewEngine()
	b := New(eng, Config{})
	addNodes(b, 2, 1.0)
	must(t, b.Submit(job("victim", 2, 1000)))
	must(t, b.Submit(job("waiter", 1, 100)))
	eng.Run(sim.Seconds(10))

	nodes, err := b.JobNodes("victim")
	must(t, err)
	if len(nodes) != 2 {
		t.Fatalf("JobNodes = %v", nodes)
	}
	for _, id := range nodes {
		must(t, b.DisableNode(id))
	}
	must(t, b.Suspend("victim"))
	// Disabled nodes must NOT be grabbed by the queued waiter.
	w, _ := b.Get("waiter")
	if w.State != framework.JobQueued {
		t.Fatalf("waiter state = %v, want queued (nodes drained)", w.State)
	}
	for _, id := range b.IdleDisabledNodeIDs() {
		must(t, b.RemoveNode(id))
	}
	if b.NumNodes() != 0 {
		t.Fatalf("NumNodes = %d, want 0", b.NumNodes())
	}
}

func TestJobNodesNotRunning(t *testing.T) {
	b := New(sim.NewEngine(), Config{})
	if _, err := b.JobNodes("nope"); !errors.Is(err, ErrJobState) {
		t.Fatalf("err = %v", err)
	}
}

func TestProgressUnknownJob(t *testing.T) {
	b := New(sim.NewEngine(), Config{})
	if _, err := b.Progress("nope"); !errors.Is(err, ErrJobUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunningListSubmissionOrder(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{})
	addNodes(b, 3, 1.0)
	// Lexicographically shuffled IDs: submission order must win (a
	// lexicographic sort would put app-10 before app-2).
	must(t, b.Submit(job("app-10", 1, 100)))
	must(t, b.Submit(job("app-2", 1, 100)))
	must(t, b.Submit(job("app-1", 1, 100)))
	running := b.Running()
	if len(running) != 3 {
		t.Fatalf("running = %d", len(running))
	}
	if running[0].ID != "app-10" || running[1].ID != "app-2" || running[2].ID != "app-1" {
		t.Fatalf("order = %v %v %v, want submission order app-10 app-2 app-1",
			running[0].ID, running[1].ID, running[2].ID)
	}
}

func TestDefaults(t *testing.T) {
	b := New(sim.NewEngine(), Config{})
	if b.Name() != "batch" {
		t.Fatalf("Name = %q", b.Name())
	}
	if b.Image() != "batch.img" {
		t.Fatalf("Image = %q", b.Image())
	}
	b2 := New(sim.NewEngine(), Config{Name: "vc1"})
	if b2.Image() != "vc1.img" {
		t.Fatalf("Image = %q", b2.Image())
	}
}

func TestJobStateString(t *testing.T) {
	for s, want := range map[framework.JobState]string{
		framework.JobQueued:    "queued",
		framework.JobRunning:   "running",
		framework.JobSuspended: "suspended",
		framework.JobDone:      "done",
		framework.JobState(9):  "state(9)",
	} {
		if s.String() != want {
			t.Fatalf("String = %q, want %q", s.String(), want)
		}
	}
}

// Property: with n identical nodes and k single-VM equal jobs, makespan
// equals ceil(k/n) * jobtime and all jobs complete.
func TestPropertyMakespanIdenticalJobs(t *testing.T) {
	f := func(nodes, jobs uint8) bool {
		n := int(nodes%8) + 1
		k := int(jobs%20) + 1
		eng := sim.NewEngine()
		b := New(eng, Config{})
		addNodes(b, n, 1.0)
		for i := 0; i < k; i++ {
			if err := b.Submit(job(fmt.Sprintf("j%02d", i), 1, 100)); err != nil {
				return false
			}
		}
		eng.RunAll()
		waves := (k + n - 1) / n
		want := sim.Seconds(float64(waves) * 100)
		for i := 0; i < k; i++ {
			j, ok := b.Get(fmt.Sprintf("j%02d", i))
			if !ok || j.State != framework.JobDone {
				return false
			}
			if j.FinishedAt > want {
				return false
			}
		}
		return eng.Now() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: suspend/resume never loses work — total runtime equals
// work regardless of when the suspension happens.
func TestPropertySuspendResumeConservesWork(t *testing.T) {
	f := func(suspendAt uint16) bool {
		at := float64(suspendAt%999) + 0.5 // in (0, 1000)
		eng := sim.NewEngine()
		b := New(eng, Config{})
		addNodes(b, 1, 1.0)
		j := job("a", 1, 1000)
		if err := b.Submit(j); err != nil {
			return false
		}
		eng.Run(sim.Seconds(at))
		if err := b.Suspend("a"); err != nil {
			return false
		}
		gap := sim.Seconds(50)
		eng.Run(eng.Now() + gap)
		if err := b.Resume("a"); err != nil {
			return false
		}
		eng.RunAll()
		wantFinish := sim.Seconds(1000) + gap
		return j.State == framework.JobDone && j.FinishedAt == wantFinish
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFailNodeRequeuesGangJob(t *testing.T) {
	eng := sim.NewEngine()
	var requeued []string
	b := New(eng, Config{Events: framework.Events{
		OnRequeue: func(j *framework.Job) { requeued = append(requeued, j.ID) },
	}})
	addNodes(b, 2, 1.0)
	j := job("a", 2, 1000)
	must(t, b.Submit(j))
	eng.Run(sim.Seconds(300))
	must(t, b.FailNode("n00"))
	if len(requeued) != 1 || requeued[0] != "a" {
		t.Fatalf("requeued = %v", requeued)
	}
	if j.State != framework.JobQueued {
		t.Fatalf("state = %v", j.State)
	}
	// Progress since the last checkpoint is lost (no suspension happened).
	if j.DoneWork != 0 {
		t.Fatalf("DoneWork = %v, want 0 (crash loses unchecked progress)", j.DoneWork)
	}
	if b.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d", b.NumNodes())
	}
	// The survivor node is idle; with a second node the job can rerun.
	b.AddNode(framework.Node{ID: "fresh", SpeedFactor: 1.0})
	eng.RunAll()
	if j.State != framework.JobDone {
		t.Fatalf("state = %v after replacement", j.State)
	}
	// Full rerun: 300 (lost) + 500 wall (1000 ref / 2 nodes).
	if j.FinishedAt != sim.Seconds(800) {
		t.Fatalf("FinishedAt = %v, want 800s", j.FinishedAt)
	}
}

func TestFailNodeKeepsCheckpointedWork(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{})
	addNodes(b, 1, 1.0)
	j := job("a", 1, 1000)
	must(t, b.Submit(j))
	eng.Run(sim.Seconds(400))
	must(t, b.Suspend("a")) // checkpoint at 400
	must(t, b.Resume("a"))
	eng.Run(sim.Seconds(600)) // 200 more seconds of progress
	must(t, b.FailNode("n00"))
	if j.DoneWork != 400 {
		t.Fatalf("DoneWork = %v, want 400 (checkpoint retained, post-checkpoint lost)", j.DoneWork)
	}
}

func TestFailIdleAndUnknownNode(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{})
	addNodes(b, 1, 1.0)
	must(t, b.FailNode("n00"))
	if b.NumNodes() != 0 {
		t.Fatalf("NumNodes = %d", b.NumNodes())
	}
	if err := b.FailNode("ghost"); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("err = %v", err)
	}
}

// --- Backfill edge cases and index consistency (PR 2) ---

// TestBackfillHeadStartsWhenCapacityFrees: a blocked head must not
// starve — small jobs backfill while it waits, and it starts the moment
// enough nodes free up.
func TestBackfillHeadStartsWhenCapacityFrees(t *testing.T) {
	eng := sim.NewEngine()
	var order []string
	b := New(eng, Config{Backfill: true, Events: framework.Events{
		OnStart: func(j *framework.Job) { order = append(order, j.ID) },
	}})
	addNodes(b, 2, 1.0)
	must(t, b.Submit(job("long", 1, 100)))
	big := job("big", 2, 100) // queue head, needs the whole cluster
	must(t, b.Submit(big))
	must(t, b.Submit(job("small", 1, 50))) // fits on the second node now
	eng.RunAll()
	want := []string{"long", "small", "big"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("start order = %v, want %v", order, want)
	}
	if big.StartedAt != sim.Seconds(100) {
		t.Fatalf("big started at %v, want 100s (when long freed its node)", big.StartedAt)
	}
	if big.State != framework.JobDone {
		t.Fatalf("big state = %v", big.State)
	}
}

// TestCrashRequeueRestartsFirst: a job that lost its nodes to a crash
// requeues at the queue front and restarts before older queued work.
func TestCrashRequeueRestartsFirst(t *testing.T) {
	eng := sim.NewEngine()
	var order []string
	b := New(eng, Config{Events: framework.Events{
		OnStart: func(j *framework.Job) { order = append(order, j.ID) },
	}})
	addNodes(b, 1, 1.0)
	v := job("victim", 1, 100)
	must(t, b.Submit(v))
	must(t, b.Submit(job("w1", 1, 10)))
	must(t, b.Submit(job("w2", 1, 10)))
	eng.Run(sim.Seconds(50))
	must(t, b.FailNode("n00")) // victim loses its only node mid-run
	if v.State != framework.JobQueued {
		t.Fatalf("victim state = %v, want queued", v.State)
	}
	if q := b.QueuedJobs(); len(q) != 3 || q[0].ID != "victim" {
		t.Fatalf("queue head = %v, want victim first of 3", q)
	}
	b.AddNode(framework.Node{ID: "replacement", SpeedFactor: 1.0})
	eng.RunAll()
	want := []string{"victim", "victim", "w1", "w2"}
	if len(order) != 4 || order[1] != "victim" || order[2] != "w1" {
		t.Fatalf("start order = %v, want %v", order, want)
	}
	if v.DoneWork != 100 || v.State != framework.JobDone {
		t.Fatalf("victim: state=%v done=%v", v.State, v.DoneWork)
	}
}

// checkNodeIndexes compares the maintained free/idle-disabled indexes
// against a brute-force recomputation from per-node status (shared
// helper in fwtest), using the attach order tracked by the test.
func checkNodeIndexes(t *testing.T, b *Batch, attachOrder []string) {
	t.Helper()
	fwtest.CheckIndexes(t, b, attachOrder)
}

// TestFreeNodeIndexConsistency drives the index through every node/job
// transition: add, schedule, disable, suspend, resume, fail, remove,
// finish — verifying it against a full rescan after each step.
func TestFreeNodeIndexConsistency(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{})
	var attachOrder []string
	add := func(id string, cloud bool) {
		b.AddNode(framework.Node{ID: id, SpeedFactor: 1.0, Cloud: cloud})
		attachOrder = append(attachOrder, id)
	}
	check := func(step string) {
		t.Helper()
		checkNodeIndexes(t, b, attachOrder)
		if t.Failed() {
			t.Fatalf("inconsistent after %s", step)
		}
	}

	add("p0", false)
	add("c0", true)
	add("p1", false)
	add("c1", true)
	add("p2", false)
	check("add 5 nodes")

	must(t, b.Submit(job("j1", 2, 1000))) // takes p0, c0
	must(t, b.Submit(job("j2", 1, 1000))) // takes p1
	check("start j1 j2")

	must(t, b.DisableNode("c1")) // idle -> idle-disabled
	must(t, b.DisableNode("p1")) // busy: stays out of both indexes
	must(t, b.DisableNode("p1")) // idempotent
	check("disable idle and busy")

	must(t, b.Suspend("j1")) // frees p0 (enabled) and c0 (enabled)
	check("suspend j1")

	must(t, b.Resume("j1")) // restarts on p0, c0
	eng.Run(sim.Seconds(1))
	check("resume j1")

	must(t, b.FailNode("p0")) // j1 requeues; c0 freed, p0 gone
	attachOrder = []string{"c0", "p1", "c1", "p2"}
	check("fail p0")

	must(t, b.RemoveNode("c1")) // idle-disabled node drained away
	attachOrder = []string{"c0", "p1", "p2"}
	check("remove c1")

	eng.RunAll() // j1 finishes (c0+p2), then j2's disabled p1 frees
	check("run to completion")

	if got := b.IdleDisabledNodeIDs(); len(got) != 1 || got[0] != "p1" {
		t.Fatalf("idle-disabled at end = %v, want [p1]", got)
	}
	if got := b.FreeNodeIDs(); len(got) != 2 || got[0] != "c0" || got[1] != "p2" {
		t.Fatalf("free at end = %v, want [c0 p2]", got)
	}
}
