package batch

import (
	"fmt"
	"testing"

	"meryn/internal/framework"
	"meryn/internal/sim"
)

// BenchmarkSchedulerThroughput measures batch scheduling cost: 64 nodes,
// 512 single-VM jobs driven to completion.
func BenchmarkSchedulerThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		fw := New(eng, Config{})
		for n := 0; n < 64; n++ {
			fw.AddNode(framework.Node{ID: fmt.Sprintf("n%03d", n), SpeedFactor: 1.0})
		}
		for j := 0; j < 512; j++ {
			if err := fw.Submit(&framework.Job{ID: fmt.Sprintf("j%04d", j), VMs: 1, Work: 100}); err != nil {
				b.Fatal(err)
			}
		}
		eng.RunAll()
	}
}

// BenchmarkSuspendResume measures the checkpoint/restart path.
func BenchmarkSuspendResume(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	fw := New(eng, Config{})
	fw.AddNode(framework.Node{ID: "n0", SpeedFactor: 1.0})
	if err := fw.Submit(&framework.Job{ID: "long", VMs: 1, Work: 1e12}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fw.Suspend("long"); err != nil {
			b.Fatal(err)
		}
		if err := fw.Resume("long"); err != nil {
			b.Fatal(err)
		}
	}
}
