package batch

import (
	"fmt"
	"testing"

	"meryn/internal/framework"
	"meryn/internal/sim"
)

// BenchmarkSchedulerThroughput measures batch scheduling cost: 64 nodes,
// 512 single-VM jobs driven to completion.
func BenchmarkSchedulerThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		fw := New(eng, Config{})
		for n := 0; n < 64; n++ {
			fw.AddNode(framework.Node{ID: fmt.Sprintf("n%03d", n), SpeedFactor: 1.0})
		}
		for j := 0; j < 512; j++ {
			if err := fw.Submit(&framework.Job{ID: fmt.Sprintf("j%04d", j), VMs: 1, Work: 100}); err != nil {
				b.Fatal(err)
			}
		}
		eng.RunAll()
	}
}

// BenchmarkRunningSnapshot measures the Running() listing on a cluster
// with 64 running jobs — the per-bid cost in core's suspensionBid.
func BenchmarkRunningSnapshot(b *testing.B) {
	eng := sim.NewEngine()
	fw := New(eng, Config{})
	for n := 0; n < 64; n++ {
		fw.AddNode(framework.Node{ID: fmt.Sprintf("n%03d", n), SpeedFactor: 1.0})
	}
	for j := 0; j < 64; j++ {
		if err := fw.Submit(&framework.Job{ID: fmt.Sprintf("app-%d", j), VMs: 1, Work: 1e12}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := fw.Running(); len(got) != 64 {
			b.Fatalf("running = %d, want 64", len(got))
		}
	}
}

// BenchmarkBackfillSchedule measures scheduling with a permanently
// blocked queue head and a deep queue of small jobs: every completion
// rescans the queue past the blocked head.
func BenchmarkBackfillSchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		fw := New(eng, Config{Backfill: true})
		for n := 0; n < 8; n++ {
			fw.AddNode(framework.Node{ID: fmt.Sprintf("n%03d", n), SpeedFactor: 1.0})
		}
		// Head wants more VMs than the cluster has; everything behind it
		// backfills.
		if err := fw.Submit(&framework.Job{ID: "blocked-head", VMs: 9, Work: 1}); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 256; j++ {
			if err := fw.Submit(&framework.Job{ID: fmt.Sprintf("j%04d", j), VMs: 1, Work: 100}); err != nil {
				b.Fatal(err)
			}
		}
		eng.RunAll()
	}
}

// BenchmarkSuspendResume measures the checkpoint/restart path.
func BenchmarkSuspendResume(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	fw := New(eng, Config{})
	fw.AddNode(framework.Node{ID: "n0", SpeedFactor: 1.0})
	if err := fw.Submit(&framework.Job{ID: "long", VMs: 1, Work: 1e12}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fw.Suspend("long"); err != nil {
			b.Fatal(err)
		}
		if err := fw.Resume("long"); err != nil {
			b.Fatal(err)
		}
	}
}
