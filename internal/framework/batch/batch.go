// Package batch implements an OGE/Torque-like batch framework: a FIFO
// job queue (with optional backfill), dedicated-node assignment — the
// paper configures the scheduler so each application owns a fixed number
// of VMs — and checkpoint-based job suspension, which is what makes the
// bid computation of paper Algorithm 2 possible.
package batch

import (
	"errors"
	"fmt"
	"sort"

	"meryn/internal/framework"
	"meryn/internal/sim"
)

// Errors returned by the batch framework.
var (
	ErrNodeExists  = errors.New("batch: node already attached")
	ErrNodeUnknown = errors.New("batch: unknown node")
	ErrNodeBusy    = errors.New("batch: node is running a job")
	ErrJobExists   = errors.New("batch: job already submitted")
	ErrJobUnknown  = errors.New("batch: unknown job")
	ErrJobState    = errors.New("batch: job is not in a valid state for this operation")
	ErrBadJob      = errors.New("batch: invalid job description")
)

type nodeState struct {
	node     framework.Node
	disabled bool
	jobID    string // "" when idle
}

type runInfo struct {
	nodeIDs   []string
	speed     float64 // min speed across assigned nodes
	startedAt sim.Time
	finish    *sim.Timer
}

// Config configures a batch framework instance.
type Config struct {
	Name   string
	Image  string
	Events framework.Events

	// Backfill lets jobs behind a blocked queue head start when enough
	// nodes are free (EASY-style without reservations). The paper's
	// single-VM workload is insensitive to this; it defaults to off to
	// match plain FIFO.
	Backfill bool
}

// Batch is an OGE-like framework. It implements framework.Framework.
type Batch struct {
	eng   *sim.Engine
	cfg   Config
	nodes map[string]*nodeState
	order []string // node attach order, for deterministic iteration
	jobs  map[string]*framework.Job
	queue []string // job IDs waiting
	runs  map[string]*runInfo
}

var _ framework.Framework = (*Batch)(nil)

// New returns an empty batch framework.
func New(eng *sim.Engine, cfg Config) *Batch {
	if cfg.Name == "" {
		cfg.Name = "batch"
	}
	if cfg.Image == "" {
		cfg.Image = cfg.Name + ".img"
	}
	return &Batch{
		eng:   eng,
		cfg:   cfg,
		nodes: make(map[string]*nodeState),
		jobs:  make(map[string]*framework.Job),
		runs:  make(map[string]*runInfo),
	}
}

// Name implements framework.Framework.
func (b *Batch) Name() string { return b.cfg.Name }

// Image implements framework.Framework.
func (b *Batch) Image() string { return b.cfg.Image }

// AddNode implements framework.Framework. Adding a node immediately
// triggers scheduling. Adding a duplicate ID panics: it indicates a
// Cluster Manager bookkeeping bug.
func (b *Batch) AddNode(n framework.Node) {
	if _, dup := b.nodes[n.ID]; dup {
		panic(fmt.Sprintf("%v: %s", ErrNodeExists, n.ID))
	}
	if n.SpeedFactor <= 0 {
		n.SpeedFactor = 1.0
	}
	b.nodes[n.ID] = &nodeState{node: n}
	b.order = append(b.order, n.ID)
	b.schedule()
}

// DisableNode implements framework.Framework.
func (b *Batch) DisableNode(id string) error {
	ns, ok := b.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	ns.disabled = true
	return nil
}

// RemoveNode implements framework.Framework.
func (b *Batch) RemoveNode(id string) error {
	ns, ok := b.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	if ns.jobID != "" {
		return fmt.Errorf("%w: %s runs %s", ErrNodeBusy, id, ns.jobID)
	}
	delete(b.nodes, id)
	for i, nid := range b.order {
		if nid == id {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	return nil
}

// FailNode implements framework.Framework. A crashed node kills the job
// gang-scheduled on it: progress since the last checkpoint (suspension)
// is lost, the job's surviving nodes are freed and the job requeues at
// the front.
func (b *Batch) FailNode(id string) error {
	ns, ok := b.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	jobID := ns.jobID
	delete(b.nodes, id)
	for i, nid := range b.order {
		if nid == id {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	if jobID == "" {
		return nil
	}
	j := b.jobs[jobID]
	run := b.runs[jobID]
	run.finish.Cancel()
	delete(b.runs, jobID)
	b.freeJobNodes(jobID) // survivors become idle
	j.State = framework.JobQueued
	b.queue = append([]string{jobID}, b.queue...)
	if b.cfg.Events.OnRequeue != nil {
		b.cfg.Events.OnRequeue(j)
	}
	b.schedule()
	return nil
}

// NumNodes implements framework.Framework.
func (b *Batch) NumNodes() int { return len(b.nodes) }

// FreeNodeIDs implements framework.Framework.
func (b *Batch) FreeNodeIDs() []string {
	var out []string
	for _, id := range b.order {
		ns := b.nodes[id]
		if ns.jobID == "" && !ns.disabled {
			out = append(out, id)
		}
	}
	return out
}

// IdleDisabledNodeIDs implements framework.Framework.
func (b *Batch) IdleDisabledNodeIDs() []string {
	var out []string
	for _, id := range b.order {
		ns := b.nodes[id]
		if ns.jobID == "" && ns.disabled {
			out = append(out, id)
		}
	}
	return out
}

// Submit implements framework.Framework.
func (b *Batch) Submit(j *framework.Job) error {
	if j.ID == "" || j.VMs <= 0 || j.Work <= 0 {
		return fmt.Errorf("%w: id=%q vms=%d work=%g", ErrBadJob, j.ID, j.VMs, j.Work)
	}
	if _, dup := b.jobs[j.ID]; dup {
		return fmt.Errorf("%w: %s", ErrJobExists, j.ID)
	}
	j.State = framework.JobQueued
	j.SubmittedAt = b.eng.Now()
	b.jobs[j.ID] = j
	b.queue = append(b.queue, j.ID)
	b.schedule()
	return nil
}

// Suspend implements framework.Framework. The job's completed work is
// preserved (checkpoint); its nodes become free.
func (b *Batch) Suspend(id string) error {
	j, ok := b.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	if j.State != framework.JobRunning {
		return fmt.Errorf("%w: %s is %v", ErrJobState, id, j.State)
	}
	run := b.runs[id]
	run.finish.Cancel()
	elapsed := sim.ToSeconds(b.eng.Now() - run.startedAt)
	j.DoneWork += elapsed * run.speed * float64(len(run.nodeIDs))
	if j.DoneWork > j.Work {
		j.DoneWork = j.Work
	}
	j.State = framework.JobSuspended
	j.Suspensions++
	b.freeJobNodes(id)
	delete(b.runs, id)
	if b.cfg.Events.OnSuspend != nil {
		b.cfg.Events.OnSuspend(j)
	}
	b.schedule()
	return nil
}

// Resume implements framework.Framework. Resumed jobs go to the front of
// the queue so lent VMs returning to the VC restart the victim first.
func (b *Batch) Resume(id string) error {
	j, ok := b.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	if j.State != framework.JobSuspended {
		return fmt.Errorf("%w: %s is %v", ErrJobState, id, j.State)
	}
	j.State = framework.JobQueued
	b.queue = append([]string{id}, b.queue...)
	if b.cfg.Events.OnResume != nil {
		b.cfg.Events.OnResume(j)
	}
	b.schedule()
	return nil
}

// JobNodes implements framework.Framework.
func (b *Batch) JobNodes(id string) ([]string, error) {
	run, ok := b.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s is not running", ErrJobState, id)
	}
	out := make([]string, len(run.nodeIDs))
	copy(out, run.nodeIDs)
	return out, nil
}

// Progress implements framework.Framework.
func (b *Batch) Progress(id string) (float64, error) {
	j, ok := b.jobs[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	done := j.DoneWork
	if run, running := b.runs[id]; running {
		done += sim.ToSeconds(b.eng.Now()-run.startedAt) * run.speed * float64(len(run.nodeIDs))
	}
	p := done / j.Work
	if p > 1 {
		p = 1
	}
	return p, nil
}

// Get implements framework.Framework.
func (b *Batch) Get(id string) (*framework.Job, bool) {
	j, ok := b.jobs[id]
	return j, ok
}

// Running implements framework.Framework.
func (b *Batch) Running() []*framework.Job {
	ids := make([]string, 0, len(b.runs))
	for id := range b.runs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*framework.Job, 0, len(ids))
	for _, id := range ids {
		out = append(out, b.jobs[id])
	}
	return out
}

// QueuedJobs implements framework.Framework.
func (b *Batch) QueuedJobs() []*framework.Job {
	out := make([]*framework.Job, 0, len(b.queue))
	for _, id := range b.queue {
		out = append(out, b.jobs[id])
	}
	return out
}

func (b *Batch) freeJobNodes(jobID string) {
	for _, ns := range b.nodes {
		if ns.jobID == jobID {
			ns.jobID = ""
		}
	}
}

// schedule assigns queued jobs to free nodes: strict FIFO, or FIFO with
// backfill when configured.
func (b *Batch) schedule() {
	for {
		free := b.FreeNodeIDs()
		if len(free) == 0 || len(b.queue) == 0 {
			return
		}
		started := false
		for qi := 0; qi < len(b.queue); qi++ {
			j := b.jobs[b.queue[qi]]
			if j.VMs > len(free) {
				if !b.cfg.Backfill {
					return // FIFO: blocked head blocks everyone
				}
				continue
			}
			b.queue = append(b.queue[:qi], b.queue[qi+1:]...)
			b.start(j, free[:j.VMs])
			started = true
			break
		}
		if !started {
			return
		}
	}
}

func (b *Batch) start(j *framework.Job, nodeIDs []string) {
	speed := 0.0
	for _, id := range nodeIDs {
		ns := b.nodes[id]
		ns.jobID = j.ID
		if speed == 0 || ns.node.SpeedFactor < speed {
			speed = ns.node.SpeedFactor
		}
	}
	now := b.eng.Now()
	if !j.Started {
		j.Started = true
		j.StartedAt = now
	}
	j.State = framework.JobRunning
	// Jobs scale perfectly over their dedicated nodes: each node works
	// one 1/n slice at its own speed, and the job finishes when the
	// slowest slice does — Work / (n * min speed).
	remaining := (j.Work - j.DoneWork) / (speed * float64(len(nodeIDs)))
	run := &runInfo{
		nodeIDs:   append([]string(nil), nodeIDs...),
		speed:     speed,
		startedAt: now,
	}
	b.runs[j.ID] = run
	run.finish = b.eng.After(sim.Seconds(remaining), func() { b.finish(j) })
	if b.cfg.Events.OnStart != nil {
		b.cfg.Events.OnStart(j)
	}
}

func (b *Batch) finish(j *framework.Job) {
	j.State = framework.JobDone
	j.DoneWork = j.Work
	j.FinishedAt = b.eng.Now()
	b.freeJobNodes(j.ID)
	delete(b.runs, j.ID)
	if b.cfg.Events.OnFinish != nil {
		b.cfg.Events.OnFinish(j)
	}
	b.schedule()
}
