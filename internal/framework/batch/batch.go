// Package batch implements an OGE/Torque-like batch framework: a FIFO
// job queue (with optional backfill), dedicated-node assignment — the
// paper configures the scheduler so each application owns a fixed number
// of VMs — and checkpoint-based job suspension, which is what makes the
// bid computation of paper Algorithm 2 possible.
//
// Scheduler state is indexed, not rescanned: free and idle-disabled
// nodes live in intrusive attach-ordered sets (framework.NodeIndex)
// maintained on every node/job transition, the job queue is a ring
// deque with O(1) front pops and requeues, and the running set is kept
// in submission order so Running() — called once per bid by the core
// protocol — neither sorts nor allocates.
package batch

import (
	"errors"
	"fmt"

	"meryn/internal/framework"
	"meryn/internal/sim"
)

// Errors returned by the batch framework.
var (
	ErrNodeExists  = errors.New("batch: node already attached")
	ErrNodeUnknown = errors.New("batch: unknown node")
	ErrNodeBusy    = errors.New("batch: node is running a job")
	ErrJobExists   = errors.New("batch: job already submitted")
	ErrJobUnknown  = errors.New("batch: unknown job")
	ErrJobState    = errors.New("batch: job is not in a valid state for this operation")
	ErrBadJob      = errors.New("batch: invalid job description")
)

type nodeState struct {
	node     framework.Node
	disabled bool
	jobID    string // "" when idle
	entry    framework.IndexEntry
}

// jobEntry pairs a job with its submission sequence number, which
// orders the maintained running set.
type jobEntry struct {
	job *framework.Job
	seq uint64
}

type runInfo struct {
	nodeIDs   []string
	speed     float64 // min speed across assigned nodes
	startedAt sim.Time
	finish    *sim.Timer
	seq       uint64 // submission sequence, for running-set removal
}

// Config configures a batch framework instance.
type Config struct {
	Name   string
	Image  string
	Events framework.Events

	// Backfill lets jobs behind a blocked queue head start when enough
	// nodes are free (EASY-style without reservations). The paper's
	// single-VM workload is insensitive to this; it defaults to off to
	// match plain FIFO.
	Backfill bool
}

// Batch is an OGE-like framework. It implements framework.Framework.
type Batch struct {
	eng   *sim.Engine
	cfg   Config
	nodes map[string]*nodeState

	// attachSeq stamps nodes in attach order; the indexes keep that
	// order so node selection matches the pre-index full scans.
	attachSeq uint64
	free      framework.NodeIndex // enabled nodes with no job
	idleDis   framework.NodeIndex // disabled nodes with no job

	jobs   map[string]jobEntry
	jobSeq uint64
	queue  framework.Deque[string] // job IDs waiting
	runs   map[string]*runInfo

	// running holds running jobs in submission order.
	running framework.SeqSet[*framework.Job]

	scratch []string // reused by schedule() for free-node collection
}

var _ framework.Framework = (*Batch)(nil)

// New returns an empty batch framework.
func New(eng *sim.Engine, cfg Config) *Batch {
	if cfg.Name == "" {
		cfg.Name = "batch"
	}
	if cfg.Image == "" {
		cfg.Image = cfg.Name + ".img"
	}
	return &Batch{
		eng:   eng,
		cfg:   cfg,
		nodes: make(map[string]*nodeState),
		jobs:  make(map[string]jobEntry),
		runs:  make(map[string]*runInfo),
	}
}

// Name implements framework.Framework.
func (b *Batch) Name() string { return b.cfg.Name }

// Image implements framework.Framework.
func (b *Batch) Image() string { return b.cfg.Image }

// AddNode implements framework.Framework. Adding a node immediately
// triggers scheduling. Adding a duplicate ID panics: it indicates a
// Cluster Manager bookkeeping bug.
func (b *Batch) AddNode(n framework.Node) {
	if _, dup := b.nodes[n.ID]; dup {
		panic(fmt.Sprintf("%v: %s", ErrNodeExists, n.ID))
	}
	if n.SpeedFactor <= 0 {
		n.SpeedFactor = 1.0
	}
	ns := &nodeState{node: n}
	ns.entry.Init(n.ID, b.attachSeq, n.Cloud)
	b.attachSeq++
	b.nodes[n.ID] = ns
	b.free.Insert(&ns.entry)
	b.schedule()
}

// DisableNode implements framework.Framework.
func (b *Batch) DisableNode(id string) error {
	ns, ok := b.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	if !ns.disabled {
		ns.disabled = true
		if ns.jobID == "" {
			ns.entry.Unlink()
			b.idleDis.Insert(&ns.entry)
		}
	}
	return nil
}

// RemoveNode implements framework.Framework.
func (b *Batch) RemoveNode(id string) error {
	ns, ok := b.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	if ns.jobID != "" {
		return fmt.Errorf("%w: %s runs %s", ErrNodeBusy, id, ns.jobID)
	}
	ns.entry.Unlink()
	delete(b.nodes, id)
	return nil
}

// FailNode implements framework.Framework. A crashed node kills the job
// gang-scheduled on it: progress since the last checkpoint (suspension)
// is lost, the job's surviving nodes are freed and the job requeues at
// the front.
func (b *Batch) FailNode(id string) error {
	ns, ok := b.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	jobID := ns.jobID
	ns.entry.Unlink()
	delete(b.nodes, id)
	if jobID == "" {
		return nil
	}
	j := b.jobs[jobID].job
	run := b.runs[jobID]
	run.finish.Cancel()
	delete(b.runs, jobID)
	b.running.Remove(run.seq)
	b.freeNodes(run.nodeIDs) // survivors become idle
	j.State = framework.JobQueued
	b.queue.PushFront(jobID)
	if b.cfg.Events.OnRequeue != nil {
		b.cfg.Events.OnRequeue(j)
	}
	b.schedule()
	return nil
}

// NumNodes implements framework.Framework.
func (b *Batch) NumNodes() int { return len(b.nodes) }

// InspectNode implements framework.Inspector: a batch node is busy
// while it hosts a job.
func (b *Batch) InspectNode(id string) (framework.NodeStatus, bool) {
	ns, ok := b.nodes[id]
	if !ok {
		return framework.NodeStatus{}, false
	}
	return framework.NodeStatus{
		Busy:     ns.jobID != "",
		Disabled: ns.disabled,
		Cloud:    ns.node.Cloud,
	}, true
}

// VisitNodeJobs implements framework.NodeJobVisitor: a batch node
// hosts at most one job.
func (b *Batch) VisitNodeJobs(nodeID string, visit func(jobID string) bool) {
	if ns, ok := b.nodes[nodeID]; ok && ns.jobID != "" {
		visit(ns.jobID)
	}
}

// FreeNodeIDs implements framework.Framework.
func (b *Batch) FreeNodeIDs() []string {
	return b.free.CollectN(nil, -1)
}

// FreeNodeCount implements framework.Framework.
func (b *Batch) FreeNodeCount(cloud bool) int { return b.free.Count(cloud) }

// VisitFreeNodes implements framework.Framework.
func (b *Batch) VisitFreeNodes(cloud bool, visit func(id string) bool) {
	b.free.Visit(cloud, visit)
}

// IdleDisabledNodeIDs implements framework.Framework.
func (b *Batch) IdleDisabledNodeIDs() []string {
	return b.idleDis.CollectN(nil, -1)
}

// Submit implements framework.Framework.
func (b *Batch) Submit(j *framework.Job) error {
	if j.ID == "" || j.VMs <= 0 || j.Work <= 0 {
		return fmt.Errorf("%w: id=%q vms=%d work=%g", ErrBadJob, j.ID, j.VMs, j.Work)
	}
	if _, dup := b.jobs[j.ID]; dup {
		return fmt.Errorf("%w: %s", ErrJobExists, j.ID)
	}
	j.State = framework.JobQueued
	j.SubmittedAt = b.eng.Now()
	b.jobs[j.ID] = jobEntry{job: j, seq: b.jobSeq}
	b.jobSeq++
	b.queue.PushBack(j.ID)
	b.schedule()
	return nil
}

// Suspend implements framework.Framework. The job's completed work is
// preserved (checkpoint); its nodes become free.
func (b *Batch) Suspend(id string) error {
	je, ok := b.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	j := je.job
	if j.State != framework.JobRunning {
		return fmt.Errorf("%w: %s is %v", ErrJobState, id, j.State)
	}
	run := b.runs[id]
	run.finish.Cancel()
	elapsed := sim.ToSeconds(b.eng.Now() - run.startedAt)
	j.DoneWork += elapsed * run.speed * float64(len(run.nodeIDs))
	if j.DoneWork > j.Work {
		j.DoneWork = j.Work
	}
	j.State = framework.JobSuspended
	j.Suspensions++
	b.freeNodes(run.nodeIDs)
	delete(b.runs, id)
	b.running.Remove(run.seq)
	if b.cfg.Events.OnSuspend != nil {
		b.cfg.Events.OnSuspend(j)
	}
	b.schedule()
	return nil
}

// Resume implements framework.Framework. Resumed jobs go to the front of
// the queue so lent VMs returning to the VC restart the victim first.
func (b *Batch) Resume(id string) error {
	je, ok := b.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	j := je.job
	if j.State != framework.JobSuspended {
		return fmt.Errorf("%w: %s is %v", ErrJobState, id, j.State)
	}
	j.State = framework.JobQueued
	b.queue.PushFront(id)
	if b.cfg.Events.OnResume != nil {
		b.cfg.Events.OnResume(j)
	}
	b.schedule()
	return nil
}

// JobNodes implements framework.Framework.
func (b *Batch) JobNodes(id string) ([]string, error) {
	run, ok := b.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s is not running", ErrJobState, id)
	}
	out := make([]string, len(run.nodeIDs))
	copy(out, run.nodeIDs)
	return out, nil
}

// VisitJobNodes implements framework.Framework.
func (b *Batch) VisitJobNodes(id string, visit func(id string) bool) error {
	run, ok := b.runs[id]
	if !ok {
		return fmt.Errorf("%w: %s is not running", ErrJobState, id)
	}
	for _, nid := range run.nodeIDs {
		if !visit(nid) {
			return nil
		}
	}
	return nil
}

// Progress implements framework.Framework.
func (b *Batch) Progress(id string) (float64, error) {
	return b.ProgressAt(id, b.eng.Now())
}

// ProgressAt reports what Progress would return at virtual instant at,
// assuming the job's current run (if any) continues uninterrupted until
// then. The float operations mirror Progress exactly — Progress
// delegates here — so a caller projecting a future poll computes the
// poll's exact value.
func (b *Batch) ProgressAt(id string, at sim.Time) (float64, error) {
	je, ok := b.jobs[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrJobUnknown, id)
	}
	j := je.job
	done := j.DoneWork
	if run, running := b.runs[id]; running {
		done += sim.ToSeconds(at-run.startedAt) * run.speed * float64(len(run.nodeIDs))
	}
	p := done / j.Work
	if p > 1 {
		p = 1
	}
	return p, nil
}

// Get implements framework.Framework.
func (b *Batch) Get(id string) (*framework.Job, bool) {
	je, ok := b.jobs[id]
	if !ok {
		return nil, false
	}
	return je.job, true
}

// Running implements framework.Framework: running jobs in submission
// order. The slice is the maintained internal set; callers must not
// mutate or retain it across state changes.
func (b *Batch) Running() []*framework.Job {
	return b.running.Values()
}

// QueuedJobs implements framework.Framework.
func (b *Batch) QueuedJobs() []*framework.Job {
	out := make([]*framework.Job, 0, b.queue.Len())
	for i := 0; i < b.queue.Len(); i++ {
		out = append(out, b.jobs[b.queue.At(i)].job)
	}
	return out
}

// freeNodes marks the given nodes idle and re-indexes them. IDs no
// longer attached (a crashed node inside a run's node list) are skipped.
func (b *Batch) freeNodes(ids []string) {
	for _, id := range ids {
		ns, ok := b.nodes[id]
		if !ok {
			continue
		}
		ns.jobID = ""
		if ns.disabled {
			b.idleDis.Insert(&ns.entry)
		} else {
			b.free.Insert(&ns.entry)
		}
	}
}

// schedule assigns queued jobs to free nodes: strict FIFO, or FIFO with
// backfill when configured. The free set is indexed, so each round costs
// O(queue scan + nodes started) instead of O(all nodes).
func (b *Batch) schedule() {
	for {
		nfree := b.free.Len()
		if nfree == 0 || b.queue.Len() == 0 {
			return
		}
		started := false
		for qi := 0; qi < b.queue.Len(); qi++ {
			je := b.jobs[b.queue.At(qi)]
			if je.job.VMs > nfree {
				if !b.cfg.Backfill {
					return // FIFO: blocked head blocks everyone
				}
				continue
			}
			b.queue.RemoveAt(qi)
			b.scratch = b.free.CollectN(b.scratch[:0], je.job.VMs)
			b.start(je, b.scratch)
			started = true
			break
		}
		if !started {
			return
		}
	}
}

func (b *Batch) start(je jobEntry, nodeIDs []string) {
	j := je.job
	speed := 0.0
	for _, id := range nodeIDs {
		ns := b.nodes[id]
		ns.entry.Unlink()
		ns.jobID = j.ID
		if speed == 0 || ns.node.SpeedFactor < speed {
			speed = ns.node.SpeedFactor
		}
	}
	now := b.eng.Now()
	if !j.Started {
		j.Started = true
		j.StartedAt = now
	}
	j.State = framework.JobRunning
	// Jobs scale perfectly over their dedicated nodes: each node works
	// one 1/n slice at its own speed, and the job finishes when the
	// slowest slice does — Work / (n * min speed).
	remaining := (j.Work - j.DoneWork) / (speed * float64(len(nodeIDs)))
	run := &runInfo{
		nodeIDs:   append([]string(nil), nodeIDs...),
		speed:     speed,
		startedAt: now,
		seq:       je.seq,
	}
	b.runs[j.ID] = run
	b.running.Insert(je.seq, j)
	run.finish = b.eng.After(sim.Seconds(remaining), func() { b.finish(j) })
	if b.cfg.Events.OnStart != nil {
		b.cfg.Events.OnStart(j)
	}
}

func (b *Batch) finish(j *framework.Job) {
	j.State = framework.JobDone
	j.DoneWork = j.Work
	j.FinishedAt = b.eng.Now()
	run := b.runs[j.ID]
	b.freeNodes(run.nodeIDs)
	delete(b.runs, j.ID)
	b.running.Remove(run.seq)
	if b.cfg.Events.OnFinish != nil {
		b.cfg.Events.OnFinish(j)
	}
	b.schedule()
}
