package framework

// Deque is a growable ring-buffer double-ended queue. Front pops and
// front pushes — the hot operations of a FIFO job queue with
// crash-requeue and resume-with-priority — are O(1), where the slice
// splices they replace were O(queue length). The zero value is ready to
// use.
type Deque[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of queued elements.
func (d *Deque[T]) Len() int { return d.n }

func (d *Deque[T]) grow() {
	if d.n < len(d.buf) {
		return
	}
	buf := make([]T, max(8, 2*len(d.buf)))
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}

// PushBack appends v at the back.
func (d *Deque[T]) PushBack(v T) {
	d.grow()
	d.buf[(d.head+d.n)%len(d.buf)] = v
	d.n++
}

// PushFront prepends v at the front.
func (d *Deque[T]) PushFront(v T) {
	d.grow()
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = v
	d.n++
}

// At returns the i-th element from the front.
func (d *Deque[T]) At(i int) T {
	if i < 0 || i >= d.n {
		panic("framework: deque index out of range")
	}
	return d.buf[(d.head+i)%len(d.buf)]
}

// PopFront removes and returns the front element.
func (d *Deque[T]) PopFront() T {
	return d.RemoveAt(0)
}

// RemoveAt removes and returns the i-th element, shifting the shorter
// side of the ring.
func (d *Deque[T]) RemoveAt(i int) T {
	v := d.At(i)
	var zero T
	if i < d.n-i-1 {
		// Shift the front segment right.
		for k := i; k > 0; k-- {
			d.buf[(d.head+k)%len(d.buf)] = d.buf[(d.head+k-1)%len(d.buf)]
		}
		d.buf[d.head] = zero
		d.head = (d.head + 1) % len(d.buf)
	} else {
		// Shift the back segment left.
		for k := i; k < d.n-1; k++ {
			d.buf[(d.head+k)%len(d.buf)] = d.buf[(d.head+k+1)%len(d.buf)]
		}
		d.buf[(d.head+d.n-1)%len(d.buf)] = zero
	}
	d.n--
	return v
}
