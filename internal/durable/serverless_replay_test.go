package durable_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"meryn/internal/api"
	"meryn/internal/api/server"
	"meryn/internal/core"
	"meryn/internal/durable"
	"meryn/internal/sim"
	"meryn/internal/workload"
)

// serverlessConfig is the platform both sides of the crash boot: a
// serverless VC next to a batch VC, same seed.
func serverlessConfig() core.Config {
	return core.Config{
		Seed: 1,
		VCs: []core.VCConfig{
			{Name: "fn1", Type: workload.TypeServerless, InitialVMs: 10},
			{Name: "vc2", Type: workload.TypeBatch, InitialVMs: 10},
		},
	}
}

// bootServerless assembles the durable control plane in stepped virtual
// time: every mutation advances the clock 60 s instead of running to
// settle, so the function is still mid-flight when revision operations
// land — a deploy on a completed function would be rejected.
func bootServerless(t *testing.T, dir string) *plane {
	t.Helper()
	store, err := durable.Open(dir, durable.Meta{Seed: 1, Policy: "meryn"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(serverlessConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sess, server.Config{
		OnMutate: func() { sess.Step(sess.Now() + sim.Seconds(60)) },
		Store:    store,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { store.Close() })
	return &plane{ts: ts, sess: sess, store: store, srv: srv}
}

// sameJSON compares two values by their wire encoding — api.Contract
// holds a pointer field, so struct equality would compare identities.
func sameJSON(t *testing.T, a, b any) bool {
	t.Helper()
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ab, bb)
}

// TestServerlessReplaySurvivesRevisionHistory: submit a function, agree
// a per-invocation contract (twice — the retried accept journals too),
// deploy a canary revision, split traffic, then crash the control plane
// mid-lifetime. Replay must rebuild the revision set byte-identically,
// fail the duplicate-accept record exactly as it failed live, and the
// reborn server must converge retried accepts and deploys on the
// recovered state.
func TestServerlessReplaySurvivesRevisionHistory(t *testing.T) {
	dir := t.TempDir()
	live := bootServerless(t, dir)

	fn := api.App{
		ID: "fn-0", Type: "serverless", VC: "fn1",
		Replicas: 2, SvcRate: 10, DurationS: 900,
		ColdStartS: 5, ConcTarget: 1, IdleWindowS: 120,
		DeclaredPeak: 8,
		Load:         &api.Load{Base: 8, OnOffPeriodS: 120, OnOffActiveS: 60},
	}
	var st api.AppStatus
	live.post(t, "/v1/apps", fn, &st)
	if len(st.Offers) == 0 {
		t.Fatalf("no offers for the function: %+v", st)
	}
	var contract api.Contract
	if resp := live.post(t, "/v1/apps/fn-0/accept", map[string]int{"offer_index": 0}, &contract); resp.StatusCode != http.StatusOK {
		t.Fatalf("accept: %d", resp.StatusCode)
	}
	// A retried accept (the reply was lost) journals ahead of the apply
	// and then converges on the agreed contract.
	var retried api.Contract
	if resp := live.post(t, "/v1/apps/fn-0/accept", map[string]int{"offer_index": 0}, &retried); resp.StatusCode != http.StatusOK {
		t.Fatalf("retried accept: %d", resp.StatusCode)
	}
	if !sameJSON(t, retried, contract) {
		t.Fatalf("retried accept diverged: %+v vs %+v", retried, contract)
	}

	var revs []api.Revision
	if resp := live.post(t, "/v1/apps/fn-0/revisions", api.DeployRevisionRequest{Name: "v2"}, &revs); resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy v2: %d", resp.StatusCode)
	}
	// A retried deploy finds the revision present: 200, and no second
	// journal record — replay must not see a duplicate.
	if resp := live.post(t, "/v1/apps/fn-0/revisions", api.DeployRevisionRequest{Name: "v2"}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("retried deploy: %d", resp.StatusCode)
	}
	if resp := live.post(t, "/v1/apps/fn-0/traffic", api.TrafficSplitRequest{
		Weights: map[string]int{"rev-1": 90, "v2": 10},
	}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("set traffic: %d", resp.StatusCode)
	}

	revisions := live.getBytes(t, "/v1/apps/fn-0/revisions")
	apps := live.getBytes(t, "/v1/apps")
	metricsB := live.getBytes(t, "/v1/metrics")
	digest := live.sess.Digest()

	// Crash: abandon the plane; every record is already fsync'd.
	live.ts.Close()
	live.store.Close()

	store2, err := durable.Open(dir, durable.Meta{Seed: 1, Policy: "meryn"})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	recs := store2.Records()
	// submit, accept, retried accept, deploy, traffic — the retried
	// deploy converged without journaling.
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5", len(recs))
	}

	p2, err := core.NewPlatform(serverlessConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := p2.Open()
	if err != nil {
		t.Fatal(err)
	}
	stats := durable.Replay(sess2, recs, func() { sess2.Step(sess2.Now() + sim.Seconds(60)) })
	// The duplicate accept errored live (and returned the contract); it
	// must fail identically on replay and leave no trace.
	if stats.Failed != 1 || stats.Applied != 4 {
		t.Fatalf("replay stats = %+v, want 1 failed (retried accept), 4 applied\nerrors: %v", stats, stats.Errors)
	}
	if got := sess2.Digest(); got != digest {
		t.Fatalf("state digest after replay = %016x, want %016x", got, digest)
	}

	srv2 := server.New(sess2, server.Config{
		OnMutate: func() { sess2.Step(sess2.Now() + sim.Seconds(60)) },
	})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	reborn := &plane{ts: ts2, sess: sess2}
	for path, want := range map[string][]byte{
		"/v1/apps/fn-0/revisions": revisions,
		"/v1/apps":                apps,
		"/v1/metrics":             metricsB,
	} {
		if got := reborn.getBytes(t, path); !bytes.Equal(got, want) {
			t.Errorf("%s diverged after replay:\n got: %s\nwant: %s", path, got, want)
		}
	}

	// Re-accept idempotency holds across the crash: a client retrying
	// its accept against the reborn plane converges on the same
	// contract, and a retried deploy converges on the recovered
	// revision set without mutating it.
	var again api.Contract
	if resp := reborn.post(t, "/v1/apps/fn-0/accept", map[string]int{"offer_index": 0}, &again); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-accept on reborn plane: %d", resp.StatusCode)
	}
	if !sameJSON(t, again, contract) {
		t.Fatalf("re-accept diverged after recovery: %+v vs %+v", again, contract)
	}
	var revsAgain []api.Revision
	if resp := reborn.post(t, "/v1/apps/fn-0/revisions", api.DeployRevisionRequest{Name: "v2"}, &revsAgain); resp.StatusCode != http.StatusOK {
		t.Fatalf("retried deploy on reborn plane: %d", resp.StatusCode)
	}
	if got := reborn.getBytes(t, "/v1/apps/fn-0/revisions"); !bytes.Equal(got, revisions) {
		t.Fatalf("revision set mutated by converging retries:\n got: %s\nwant: %s", got, revisions)
	}
}
