// Package durable makes the control plane crash-safe. The insight it
// leans on is that the platform is a deterministic discrete-event
// simulation: given the same configuration (seed, policy) and the same
// sequence of state-changing API actions applied at the same virtual
// times, core.Session rebuilds byte-identical platform state. Recovery
// therefore never serializes the engine — it records *inputs*:
//
//   - a write-ahead Journal appends one typed Record per state-changing
//     API action (submit, accept, counter, reject), fsync'd before the
//     handler replies;
//   - a Snapshot periodically compacts the full record history (plus
//     the config fingerprint, the virtual clock and a state digest)
//     into one atomically-replaced file, truncating the journal;
//   - Replay drives the records back through the ordinary session API
//     after a restart, stepping the virtual clock to each record's
//     time before applying it.
//
// A torn final journal record (the classic crash-mid-write artifact)
// is detected by CRC framing and dropped; anything torn earlier than
// the tail is corruption and refuses to load.
package durable

import (
	"fmt"

	"meryn/internal/api"
)

// Kind tags a journal record with the API action it captures.
type Kind string

// Journaled control-plane actions. These mirror the mutating routes of
// the HTTP API one-to-one; read-only routes are never journaled.
const (
	KindSubmit  Kind = "submit"
	KindAccept  Kind = "accept"
	KindCounter Kind = "counter"
	KindReject  Kind = "reject"
	// Serverless rollout actions: deploy an immutable revision, move
	// traffic between revisions. Journaled like every other mutation, so
	// an in-flight canary survives a control-plane crash.
	KindDeployRevision Kind = "deploy-revision"
	KindSetTraffic     Kind = "set-traffic"
)

// Record is one state-changing control-plane action. TimeS is the
// virtual clock at the moment the action was applied; Replay steps the
// engine there before re-applying, which is what makes the rebuilt
// state identical rather than merely similar.
type Record struct {
	Seq   int64   `json:"seq"`
	TimeS float64 `json:"time_s"`
	Kind  Kind    `json:"kind"`

	// Submit payload: the wire-form application, including the ID the
	// server assigned (so replay re-creates the same ID space).
	App *api.App `json:"app,omitempty"`

	// Accept/counter/reject target.
	AppID string `json:"app_id,omitempty"`

	// Accept payload.
	OfferIndex int `json:"offer_index,omitempty"`

	// Counter payload (exactly one of the two is non-zero).
	DeadlineS float64 `json:"deadline_s,omitempty"`
	Price     float64 `json:"price,omitempty"`

	// Deploy-revision payload.
	Revision string `json:"revision,omitempty"`

	// Set-traffic payload.
	Weights map[string]int `json:"weights,omitempty"`
}

// Validate rejects records that could never replay.
func (r Record) Validate() error {
	switch r.Kind {
	case KindSubmit:
		if r.App == nil || r.App.ID == "" {
			return fmt.Errorf("durable: submit record without an app ID")
		}
	case KindAccept, KindCounter, KindReject:
		if r.AppID == "" {
			return fmt.Errorf("durable: %s record without an app ID", r.Kind)
		}
	case KindDeployRevision:
		if r.AppID == "" {
			return fmt.Errorf("durable: %s record without an app ID", r.Kind)
		}
		if r.Revision == "" {
			return fmt.Errorf("durable: deploy-revision record without a revision name")
		}
	case KindSetTraffic:
		if r.AppID == "" {
			return fmt.Errorf("durable: %s record without an app ID", r.Kind)
		}
		if len(r.Weights) == 0 {
			return fmt.Errorf("durable: set-traffic record without weights")
		}
	default:
		return fmt.Errorf("durable: unknown record kind %q", r.Kind)
	}
	if r.TimeS < 0 {
		return fmt.Errorf("durable: record with negative time %g", r.TimeS)
	}
	return nil
}
