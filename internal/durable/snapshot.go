package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Meta is the configuration fingerprint a state directory is bound to.
// Replaying records against a differently-configured platform would
// silently rebuild a *different* deterministic state, so Open refuses a
// mismatch outright.
type Meta struct {
	Seed   int64  `json:"seed"`
	Policy string `json:"policy"`
}

// Snapshot is the compacted record history: because state is a pure
// function of the record sequence, "snapshotting the session" is
// snapshotting its inputs. TimeS, Digest and NextID document the state
// the records rebuild (the digest lets recovery verify byte-identical
// replay); LastSeq lets the store drop journal records the snapshot
// already covers after a crash between snapshot and journal truncate.
type Snapshot struct {
	Meta    Meta     `json:"meta"`
	TimeS   float64  `json:"time_s"`
	NextID  int64    `json:"next_id"`
	Digest  string   `json:"digest,omitempty"`
	LastSeq int64    `json:"last_seq"`
	Records []Record `json:"records"`
}

const (
	snapshotName = "snapshot.json"
	journalName  = "journal.ndjson"
)

// writeSnapshot replaces the snapshot atomically: write to a temp file,
// fsync it, rename over the old snapshot, fsync the directory. A crash
// at any point leaves either the old snapshot or the new one — never a
// half-written file.
func writeSnapshot(dir string, s *Snapshot) error {
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, snapshotName+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, snapshotName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// loadSnapshot reads the snapshot; (nil, nil) when none exists yet.
func loadSnapshot(dir string) (*Snapshot, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: %w", filepath.Join(dir, snapshotName), err)
	}
	return &s, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
