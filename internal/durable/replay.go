package durable

import (
	"fmt"

	"meryn/internal/core"
	"meryn/internal/sim"
)

// ReplayStats summarizes a recovery pass.
type ReplayStats struct {
	Applied int      // records whose action took effect again
	Failed  int      // records whose action errored (it errored live too)
	Errors  []string // one "seq N (kind): err" line per failed record
}

// Replay rebuilds session state by re-applying journaled actions in
// order. Before each record it steps the virtual clock to the record's
// time, so every submission, offer computation and contract lands at
// exactly the instant it did live — the determinism the sweep harness
// proves is what makes the rebuilt state byte-identical.
//
// onMutate mirrors the server's post-mutation hook (merynd's
// virtual-time mode fast-forwards there); it runs after every record
// that applied cleanly, exactly as the live handler did. Records whose
// action errors are counted and skipped, not fatal: the journal is
// written ahead of the apply, so a request that failed validation live
// fails identically here and leaves the same state behind.
func Replay(sess *core.Session, recs []Record, onMutate func()) ReplayStats {
	var stats ReplayStats
	for _, r := range recs {
		sess.Step(sim.Seconds(r.TimeS))
		if err := apply(sess, r); err != nil {
			stats.Failed++
			stats.Errors = append(stats.Errors, fmt.Sprintf("seq %d (%s): %v", r.Seq, r.Kind, err))
			continue
		}
		if onMutate != nil {
			onMutate()
		}
		stats.Applied++
	}
	return stats
}

// apply re-issues one record through the session API with the same
// semantics as the live HTTP handler.
func apply(sess *core.Session, r Record) error {
	switch r.Kind {
	case KindSubmit:
		app, err := r.App.ToWorkload()
		if err != nil {
			return err
		}
		dueNow := app.SubmitAt <= sess.Now()
		neg, err := sess.Submit(app)
		if err != nil {
			return err
		}
		if dueNow {
			return neg.Await()
		}
		return nil
	case KindAccept:
		neg, err := negotiation(sess, r.AppID)
		if err != nil {
			return err
		}
		_, err = neg.Accept(r.OfferIndex)
		return err
	case KindCounter:
		neg, err := negotiation(sess, r.AppID)
		if err != nil {
			return err
		}
		_, err = neg.Counter(sim.Seconds(r.DeadlineS), r.Price)
		return err
	case KindReject:
		neg, err := negotiation(sess, r.AppID)
		if err != nil {
			return err
		}
		return neg.Reject()
	case KindDeployRevision:
		return sess.DeployRevision(r.AppID, r.Revision)
	case KindSetTraffic:
		return sess.SetTrafficSplit(r.AppID, r.Weights)
	default:
		return fmt.Errorf("durable: unknown record kind %q", r.Kind)
	}
}

func negotiation(sess *core.Session, appID string) (*core.Negotiation, error) {
	neg, ok := sess.Negotiation(appID)
	if !ok {
		return nil, fmt.Errorf("durable: no negotiation for app %q", appID)
	}
	return neg, nil
}
