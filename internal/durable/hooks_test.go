package durable

import (
	"testing"

	"meryn/internal/api"
)

// TestStoreHooks: every append reports a total ≥ fsync share, the seal
// hook fires per checkpoint, and the append hook survives the journal
// swap a checkpoint performs.
func TestStoreHooks(t *testing.T) {
	st, err := Open(t.TempDir(), Meta{Seed: 1, Policy: "meryn"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var appends, seals int
	var totals, fsyncs []float64
	st.SetHooks(Hooks{
		JournalAppend: func(total, fsync float64) {
			appends++
			totals = append(totals, total)
			fsyncs = append(fsyncs, fsync)
		},
		SnapshotSeal: func(s float64) {
			seals++
			if s < 0 {
				t.Errorf("seal duration %g < 0", s)
			}
		},
	})

	rec := Record{TimeS: 0, Kind: KindSubmit, App: &api.App{ID: "h-1", Type: "batch", VMs: 1, WorkS: 10}}
	if _, err := st.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(0, 1, ""); err != nil {
		t.Fatal(err)
	}
	rec.App = &api.App{ID: "h-2", Type: "batch", VMs: 1, WorkS: 10}
	if _, err := st.Append(rec); err != nil {
		t.Fatal(err)
	}

	if appends != 2 {
		t.Fatalf("append hook fired %d times, want 2 (did the checkpoint's journal swap drop it?)", appends)
	}
	if seals != 1 {
		t.Fatalf("seal hook fired %d times, want 1", seals)
	}
	for i := range totals {
		if totals[i] <= 0 || fsyncs[i] <= 0 || fsyncs[i] > totals[i] {
			t.Errorf("append %d: total=%g fsync=%g, want 0 < fsync <= total", i, totals[i], fsyncs[i])
		}
	}
}
