package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"time"
)

// A journal is NDJSON with per-line CRC framing:
//
//	{"c":<crc32-IEEE of the record bytes>,"r":{...record...}}\n
//
// Appends are a single write followed by fsync, so a crash can only
// leave a *prefix* of the final line behind (possibly with no trailing
// newline). readJournal treats exactly that — an unparsable or
// CRC-mismatched final line — as a torn tail and reports how many clean
// bytes precede it; the store truncates the file there before
// appending again. A bad line with clean lines after it cannot be a
// torn write and fails the load.
type frame struct {
	C uint32          `json:"c"`
	R json.RawMessage `json:"r"`
}

// Journal is an append-only, fsync'd record log.
type Journal struct {
	f    *os.File
	path string

	// onAppend, when non-nil, observes each append's total and fsync
	// wall time — the durability tax, surfaced on /metrics.
	onAppend func(total, fsync time.Duration)
}

// openJournal opens (creating if needed) the journal for appending.
func openJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, path: path}, nil
}

// Append frames, writes and fsyncs one record. The record is durable
// when Append returns.
func (j *Journal) Append(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return err
	}
	line, err := json.Marshal(frame{C: crc32.ChecksumIEEE(raw), R: raw})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	start := time.Now()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("durable: journal write: %w", err)
	}
	syncStart := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("durable: journal fsync: %w", err)
	}
	if j.onAppend != nil {
		now := time.Now()
		j.onAppend(now.Sub(start), now.Sub(syncStart))
	}
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error { return j.f.Close() }

// readJournal loads every intact record and returns the byte offset of
// the clean prefix. torn reports whether a damaged tail was dropped.
func readJournal(path string) (recs []Record, clean int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	off := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		line := data
		complete := nl >= 0
		if complete {
			line = data[:nl]
		}
		rec, perr := parseFrame(line)
		if perr != nil {
			// Only the final line of the file may be damaged — that is
			// the torn-write signature. Anything earlier is corruption.
			rest := data
			if complete {
				rest = data[nl+1:]
			} else {
				rest = nil
			}
			if complete && len(rest) > 0 {
				return nil, 0, false, fmt.Errorf("durable: journal %s corrupt at offset %d: %v", path, off, perr)
			}
			return recs, off, true, nil
		}
		if !complete {
			// Parsed but never newline-terminated: the fsync that would
			// have sealed it never happened — treat as torn.
			return recs, off, true, nil
		}
		recs = append(recs, rec)
		off += int64(nl + 1)
		data = data[nl+1:]
	}
	return recs, off, false, nil
}

func parseFrame(line []byte) (Record, error) {
	var fr frame
	if err := json.Unmarshal(line, &fr); err != nil {
		return Record{}, err
	}
	if got := crc32.ChecksumIEEE(fr.R); got != fr.C {
		return Record{}, fmt.Errorf("crc mismatch: frame says %08x, payload hashes to %08x", fr.C, got)
	}
	var rec Record
	if err := json.Unmarshal(fr.R, &rec); err != nil {
		return Record{}, err
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}
