package durable_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"meryn/internal/api"
	"meryn/internal/api/server"
	"meryn/internal/core"
	"meryn/internal/durable"
)

// bootstrap assembles the full durable control plane the way merynd
// -state-dir does: platform, session, store-backed server, virtual
// time.
type plane struct {
	ts    *httptest.Server
	sess  *core.Session
	store *durable.Store
	srv   *server.Server
}

func boot(t *testing.T, dir string, snapshotEvery int) *plane {
	t.Helper()
	store, err := durable.Open(dir, durable.Meta{Seed: 1, Policy: "meryn"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sess, server.Config{
		OnMutate:      func() { sess.RunToSettle() },
		Store:         store,
		SnapshotEvery: snapshotEvery,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { store.Close() })
	return &plane{ts: ts, sess: sess, store: store, srv: srv}
}

func (pl *plane) post(t *testing.T, path string, body, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(pl.ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
	}
	return resp
}

func (pl *plane) getBytes(t *testing.T, path string) []byte {
	t.Helper()
	resp, err := http.Get(pl.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// drive runs a multi-app, multi-round negotiation history: submit,
// counter, accept; a second app rejected; a third accepted directly.
func drive(t *testing.T, pl *plane) {
	t.Helper()
	var st api.AppStatus
	pl.post(t, "/v1/apps", api.App{Type: "batch", VMs: 1, WorkS: 600}, &st)
	if len(st.Offers) == 0 {
		t.Fatalf("no offers: %+v", st)
	}
	var offers []api.Offer
	pl.post(t, "/v1/apps/"+st.ID+"/counter", map[string]float64{"price": st.Offers[0].Price}, &offers)
	pl.post(t, "/v1/apps/"+st.ID+"/accept", map[string]int{"offer_index": 0}, nil)

	var st2 api.AppStatus
	pl.post(t, "/v1/apps", api.App{Type: "batch", VMs: 2, WorkS: 900}, &st2)
	pl.post(t, "/v1/apps/"+st2.ID+"/reject", nil, nil)

	var st3 api.AppStatus
	pl.post(t, "/v1/apps", api.App{Type: "batch", VMs: 2, WorkS: 450}, &st3)
	pl.post(t, "/v1/apps/"+st3.ID+"/accept", nil, nil)
}

// TestReplayRebuildsByteIdenticalState is the tentpole property: kill
// the control plane at an arbitrary point (here: simply never shut it
// down — every record is already fsync'd) and a fresh platform that
// replays the store serves byte-identical /v1/apps, /v1/events and
// /v1/metrics, and hashes to the same state digest.
func TestReplayRebuildsByteIdenticalState(t *testing.T) {
	dir := t.TempDir()
	live := boot(t, dir, 3) // snapshotEvery 3: recovery crosses a snapshot+journal boundary
	drive(t, live)

	apps := live.getBytes(t, "/v1/apps")
	metricsB := live.getBytes(t, "/v1/metrics")
	events := live.getBytes(t, "/v1/events")
	digest := live.sess.Digest()

	// "Crash": abandon the live plane without any shutdown hook.
	live.ts.Close()
	live.store.Close()

	store2, err := durable.Open(dir, durable.Meta{Seed: 1, Policy: "meryn"})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	recs := store2.Records()
	if len(recs) != 7 {
		t.Fatalf("recovered %d records, want 7", len(recs))
	}
	if snap := store2.LastCheckpoint(); snap == nil || len(snap.Records) == 0 {
		t.Fatal("periodic checkpoint never fired (SnapshotEvery=3, 7 records)")
	}

	p2, err := core.NewPlatform(core.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := p2.Open()
	if err != nil {
		t.Fatal(err)
	}
	stats := durable.Replay(sess2, recs, func() { sess2.RunToSettle() })
	if stats.Failed != 0 || stats.Applied != len(recs) {
		t.Fatalf("replay stats = %+v\nerrors: %v", stats, stats.Errors)
	}
	if got := sess2.Digest(); got != digest {
		t.Fatalf("state digest after replay = %016x, want %016x", got, digest)
	}

	srv2 := server.New(sess2, server.Config{OnMutate: func() { sess2.RunToSettle() }})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	reborn := &plane{ts: ts2, sess: sess2}
	for path, want := range map[string][]byte{
		"/v1/apps":    apps,
		"/v1/metrics": metricsB,
		"/v1/events":  events,
	} {
		if got := reborn.getBytes(t, path); !bytes.Equal(got, want) {
			t.Errorf("%s diverged after replay:\n got: %s\nwant: %s", path, got, want)
		}
	}
}

// TestReplayMidNegotiation: the crash lands between the offer round
// and the accept — the negotiation must come back resumable, and the
// accept must then complete on the replayed platform.
func TestReplayMidNegotiation(t *testing.T) {
	dir := t.TempDir()
	live := boot(t, dir, 64)
	var st api.AppStatus
	live.post(t, "/v1/apps", api.App{Type: "batch", VMs: 1, WorkS: 600}, &st)
	var offers []api.Offer
	live.post(t, "/v1/apps/"+st.ID+"/counter", map[string]float64{"price": st.Offers[0].Price}, &offers)
	live.ts.Close()
	live.store.Close()

	store2, err := durable.Open(dir, durable.Meta{Seed: 1, Policy: "meryn"})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	p2, _ := core.NewPlatform(core.Config{Seed: 1})
	sess2, _ := p2.Open()
	if stats := durable.Replay(sess2, store2.Records(), func() { sess2.RunToSettle() }); stats.Failed != 0 {
		t.Fatalf("replay stats = %+v", stats)
	}

	neg, ok := sess2.Negotiation(st.ID)
	if !ok {
		t.Fatalf("negotiation for %s lost", st.ID)
	}
	if neg.State() != core.NegotiationOffered || neg.Round() != 1 {
		t.Fatalf("state=%s round=%d, want offered round 1", neg.State(), neg.Round())
	}
	got := neg.Offers()
	if len(got) != len(offers) || got[0].Price != offers[0].Price {
		t.Fatalf("replayed offers %+v, want %+v", got, offers)
	}
	if _, err := neg.Accept(0); err != nil {
		t.Fatal(err)
	}
	sess2.RunToSettle()
	status, err := sess2.Status(st.ID)
	if err != nil || status.Phase != core.PhaseCompleted {
		t.Fatalf("after accept on replayed platform: phase=%s err=%v", status.Phase, err)
	}
}

// TestReplayToleratesFailedRecords: the journal is written ahead of the
// apply, so a request that failed live (bad offer index) has a record;
// replay must fail it identically and keep going.
func TestReplayToleratesFailedRecords(t *testing.T) {
	dir := t.TempDir()
	live := boot(t, dir, 64)
	var st api.AppStatus
	live.post(t, "/v1/apps", api.App{Type: "batch", VMs: 1, WorkS: 600}, &st)
	var apiErr api.Error
	if resp := live.post(t, "/v1/apps/"+st.ID+"/accept", map[string]int{"offer_index": 99}, &apiErr); resp.StatusCode != http.StatusConflict {
		t.Fatalf("accept with bad index: %d (%s)", resp.StatusCode, apiErr.Error)
	}
	live.post(t, "/v1/apps/"+st.ID+"/accept", map[string]int{"offer_index": 0}, nil)
	digest := live.sess.Digest()
	live.ts.Close()
	live.store.Close()

	store2, err := durable.Open(dir, durable.Meta{Seed: 1, Policy: "meryn"})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	p2, _ := core.NewPlatform(core.Config{Seed: 1})
	sess2, _ := p2.Open()
	stats := durable.Replay(sess2, store2.Records(), func() { sess2.RunToSettle() })
	if stats.Failed != 1 || stats.Applied != 2 {
		t.Fatalf("replay stats = %+v, want 1 failed (the bad accept), 2 applied", stats)
	}
	if got := sess2.Digest(); got != digest {
		t.Fatalf("digest = %016x, want %016x", got, digest)
	}
}
