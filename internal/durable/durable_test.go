package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"meryn/internal/api"
)

var testMeta = Meta{Seed: 1, Policy: "meryn"}

func submitRec(id string, t float64) Record {
	return Record{TimeS: t, Kind: KindSubmit, App: &api.App{ID: id, Type: "batch", VMs: 1, WorkS: 600}}
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestJournalRoundTrip appends a mixed batch of records and reads them
// back intact, sequence numbers included.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	want := []Record{
		submitRec("a", 0),
		{TimeS: 1, Kind: KindCounter, AppID: "a", Price: 40},
		{TimeS: 2, Kind: KindAccept, AppID: "a", OfferIndex: 1},
		{TimeS: 3, Kind: KindReject, AppID: "b"},
	}
	for _, r := range want {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2 := openStore(t, dir)
	got := s2.Records()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i, g := range got {
		if g.Seq != int64(i)+1 {
			t.Errorf("record %d: seq = %d", i, g.Seq)
		}
		if g.Kind != want[i].Kind || g.TimeS != want[i].TimeS || g.AppID != want[i].AppID ||
			g.OfferIndex != want[i].OfferIndex || g.Price != want[i].Price {
			t.Errorf("record %d = %+v, want %+v", i, g, want[i])
		}
	}
	if got[0].App == nil || got[0].App.ID != "a" || got[0].App.WorkS != 600 {
		t.Errorf("submit payload did not survive: %+v", got[0].App)
	}
}

// TestTornTailTolerated mimics a crash mid-append: a partial final line
// (no newline, broken JSON) must be dropped, truncated away, and not
// poison later appends.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	for i, id := range []string{"a", "b"} {
		if _, err := s.Append(submitRec(id, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	jpath := filepath.Join(dir, journalName)
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"c":123,"r":{"seq":3,"kind":"sub`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openStore(t, dir)
	if !s2.TornTail() {
		t.Fatal("TornTail() = false after a partial final record")
	}
	if got := s2.Records(); len(got) != 2 {
		t.Fatalf("recovered %d records, want 2", len(got))
	}
	// The torn bytes must be gone so the next append starts clean.
	if _, err := s2.Append(submitRec("c", 2)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openStore(t, dir)
	if got := s3.Records(); len(got) != 3 || got[2].App.ID != "c" {
		t.Fatalf("after torn-tail truncate + append: %d records", len(got))
	}
}

// TestTornTailCompleteLine covers the other torn shape: a final line
// that did get its newline but whose CRC does not match (partial page
// flush). It is dropped; the same damage mid-file is corruption.
func TestTornTailCompleteLine(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Append(submitRec("a", 0))
	s.Append(submitRec("b", 1))
	s.Close()

	jpath := filepath.Join(dir, journalName)
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))

	// Damage the last line's payload: torn tail, tolerated.
	tail := bytes.Replace(lines[1], []byte(`"b"`), []byte(`"x"`), 1)
	os.WriteFile(jpath, append(append([]byte{}, lines[0]...), tail...), 0o644)
	s2 := openStore(t, dir)
	if got := s2.Records(); len(got) != 1 || !s2.TornTail() {
		t.Fatalf("damaged final line: %d records, torn=%v; want 1, true", len(got), s2.TornTail())
	}
	s2.Close()

	// The same damage on the *first* line is corruption: refuse.
	head := bytes.Replace(lines[0], []byte(`"a"`), []byte(`"x"`), 1)
	os.WriteFile(jpath, append(append([]byte{}, head...), lines[1]...), 0o644)
	if _, err := Open(dir, testMeta); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-journal corruption: err = %v, want corrupt", err)
	}
}

// TestCheckpointCompacts snapshots the history, truncates the journal,
// and still recovers the full record sequence afterwards.
func TestCheckpointCompacts(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Append(submitRec("a", 0))
	s.Append(Record{TimeS: 1, Kind: KindAccept, AppID: "a"})
	if err := s.Checkpoint(1, 1, "deadbeef"); err != nil {
		t.Fatal(err)
	}
	if s.TailLen() != 0 {
		t.Fatalf("TailLen after checkpoint = %d", s.TailLen())
	}
	if fi, err := os.Stat(filepath.Join(dir, journalName)); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not truncated: %v, size %d", err, fi.Size())
	}
	s.Append(submitRec("b", 2))
	s.Close()

	s2 := openStore(t, dir)
	got := s2.Records()
	if len(got) != 3 || got[0].App.ID != "a" || got[2].App.ID != "b" {
		t.Fatalf("after checkpoint + append, recovered %d records", len(got))
	}
	snap := s2.LastCheckpoint()
	if snap == nil || snap.LastSeq != 2 || snap.Digest != "deadbeef" || snap.NextID != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestCrashBetweenSnapshotAndTruncate: if the process dies after the
// snapshot rename but before the journal truncate, the journal still
// holds records the snapshot covers. Open must dedupe by sequence.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Append(submitRec("a", 0))
	s.Append(submitRec("b", 1))
	s.Close()
	// Write the snapshot by hand, leaving the journal untouched — the
	// exact on-disk shape of that crash window.
	recs, _, _, err := readJournal(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(dir, &Snapshot{Meta: testMeta, LastSeq: 2, Records: recs}); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	if got := s2.Records(); len(got) != 2 {
		t.Fatalf("recovered %d records, want 2 (journal dupes dropped)", len(got))
	}
	if s2.TailLen() != 0 {
		t.Fatalf("TailLen = %d, want 0", s2.TailLen())
	}
}

// TestMetaMismatch: a state dir written under one seed/policy must not
// silently replay under another — that would rebuild a different
// deterministic state.
func TestMetaMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Append(submitRec("a", 0))
	if err := s.Checkpoint(0, 1, ""); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Open(dir, Meta{Seed: 2, Policy: "meryn"}); err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("seed mismatch: err = %v", err)
	}
	if _, err := Open(dir, Meta{Seed: 1, Policy: "static"}); err == nil {
		t.Fatal("policy mismatch accepted")
	}
}

// TestJournalGap: a journal whose sequence numbers skip refuses to load
// rather than replay an incomplete history.
func TestJournalGap(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	r1 := submitRec("a", 0)
	r1.Seq = 1
	r3 := submitRec("b", 1)
	r3.Seq = 3
	j.Append(r1)
	j.Append(r3)
	j.Close()
	if _, err := Open(dir, testMeta); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gapped journal: err = %v", err)
	}
}

// TestRecordValidate rejects the shapes that could never replay.
func TestRecordValidate(t *testing.T) {
	bad := []Record{
		{Kind: KindSubmit},                        // no app
		{Kind: KindSubmit, App: &api.App{}},       // no ID
		{Kind: KindAccept},                        // no target
		{Kind: "warp", AppID: "a"},                // unknown kind
		{Kind: KindReject, AppID: "a", TimeS: -1}, // negative time
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("record %d validated: %+v", i, r)
		}
	}
	if err := submitRec("a", 0).Validate(); err != nil {
		t.Errorf("good record rejected: %v", err)
	}
}
