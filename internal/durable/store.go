package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Hooks observe the store's I/O latencies — the durability tax the
// control plane pays per request. All fields are optional; nil funcs
// are skipped. Durations are seconds, ready for latency histograms.
type Hooks struct {
	// JournalAppend fires after each durable append with the total
	// append time and the fsync share of it.
	JournalAppend func(totalSeconds, fsyncSeconds float64)
	// SnapshotSeal fires after each checkpoint's snapshot write
	// (marshal + write + fsync + rename + dir fsync).
	SnapshotSeal func(seconds float64)
}

// Store is one state directory: the current snapshot plus the journal
// tail that accumulated since it was written. All methods are safe for
// concurrent use, though the control plane serializes state-changing
// requests anyway.
type Store struct {
	mu   sync.Mutex
	dir  string
	meta Meta
	j    *Journal

	snap  *Snapshot // last durable checkpoint (nil before the first)
	tail  []Record  // journal records newer than the snapshot
	torn  bool      // a damaged final journal record was dropped at Open
	hooks Hooks
}

// Open binds a state directory, creating it when absent. An existing
// directory must carry the same configuration fingerprint; its journal
// may end in a torn record (dropped and truncated away), but damage
// anywhere else refuses to load rather than replay a gapped history.
func Open(dir string, meta Meta) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snap, err := loadSnapshot(dir)
	if err != nil {
		return nil, err
	}
	lastSeq := int64(0)
	if snap != nil {
		if snap.Meta != meta {
			return nil, fmt.Errorf("durable: state dir %s was written by seed=%d policy=%s, refusing to recover with seed=%d policy=%s",
				dir, snap.Meta.Seed, snap.Meta.Policy, meta.Seed, meta.Policy)
		}
		for i, r := range snap.Records {
			if r.Seq != int64(i)+1 {
				return nil, fmt.Errorf("durable: snapshot record %d carries seq %d", i, r.Seq)
			}
		}
		lastSeq = snap.LastSeq
		if n := int64(len(snap.Records)); lastSeq != n {
			return nil, fmt.Errorf("durable: snapshot says last_seq=%d but holds %d records", lastSeq, n)
		}
	}

	jpath := filepath.Join(dir, journalName)
	tail, clean, torn, err := readJournal(jpath)
	if err != nil {
		return nil, err
	}
	if torn {
		// Drop the damaged bytes so the next append starts on a clean
		// frame boundary instead of gluing onto a partial line.
		if err := os.Truncate(jpath, clean); err != nil {
			return nil, fmt.Errorf("durable: truncating torn journal tail: %w", err)
		}
	}
	// A crash between writing a snapshot and truncating the journal
	// leaves records in both; the snapshot wins for everything it
	// covers.
	for len(tail) > 0 && tail[0].Seq <= lastSeq {
		tail = tail[1:]
	}
	for _, r := range tail {
		if r.Seq != lastSeq+1 {
			return nil, fmt.Errorf("durable: journal gap: record seq %d follows %d", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
	}
	// The surviving tail predates a snapshot that never happened; fold
	// it back into a fresh journal if we truncated (keeps the file's
	// clean prefix exactly the surviving records).
	j, err := openJournal(jpath)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, meta: meta, j: j, snap: snap, tail: tail, torn: torn}, nil
}

// Records returns the full replayable history, snapshot records first.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	if s.snap != nil {
		out = append(out, s.snap.Records...)
	}
	return append(out, s.tail...)
}

// TailLen is the number of records journaled since the last
// checkpoint — the "how stale is the snapshot" gauge the server's
// periodic checkpoint trigger watches.
func (s *Store) TailLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tail)
}

// SetHooks installs latency observers. Call before serving traffic;
// the hooks must be safe for use from whichever goroutine appends.
func (s *Store) SetHooks(h Hooks) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = h
	s.armJournalHookLocked()
}

// armJournalHookLocked (re)wires the append observer onto the current
// journal — needed again after Checkpoint swaps the journal file.
func (s *Store) armJournalHookLocked() {
	if s.hooks.JournalAppend == nil {
		s.j.onAppend = nil
		return
	}
	fn := s.hooks.JournalAppend
	s.j.onAppend = func(total, fsync time.Duration) {
		fn(total.Seconds(), fsync.Seconds())
	}
}

// TornTail reports whether Open dropped a damaged final journal record.
func (s *Store) TornTail() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.torn
}

// LastCheckpoint returns the snapshot Open recovered or Checkpoint last
// wrote (nil before the first). The caller must not mutate it.
func (s *Store) LastCheckpoint() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// Append stamps the record with the next sequence number and makes it
// durable. The returned record carries the assigned Seq.
func (s *Store) Append(r Record) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.Seq = s.lastSeqLocked() + 1
	if err := s.j.Append(r); err != nil {
		return Record{}, err
	}
	s.tail = append(s.tail, r)
	return r, nil
}

func (s *Store) lastSeqLocked() int64 {
	if n := len(s.tail); n > 0 {
		return s.tail[n-1].Seq
	}
	if s.snap != nil {
		return s.snap.LastSeq
	}
	return 0
}

// Checkpoint compacts the full history into a new snapshot and
// truncates the journal. timeS, nextID and digest document the state
// the records rebuild (digest: core.Session.Digest at a quiescent
// moment, used to verify recovery).
func (s *Store) Checkpoint(timeS float64, nextID int64, digest string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &Snapshot{
		Meta:    s.meta,
		TimeS:   timeS,
		NextID:  nextID,
		Digest:  digest,
		LastSeq: s.lastSeqLocked(),
	}
	if s.snap != nil {
		snap.Records = append(snap.Records, s.snap.Records...)
	}
	snap.Records = append(snap.Records, s.tail...)
	sealStart := time.Now()
	if err := writeSnapshot(s.dir, snap); err != nil {
		return err
	}
	if s.hooks.SnapshotSeal != nil {
		s.hooks.SnapshotSeal(time.Since(sealStart).Seconds())
	}
	// The snapshot is durable; the journal's contents are now redundant.
	// Crash-ordering note: if we die before the truncate lands, Open
	// dedupes by sequence number.
	if err := s.j.Close(); err != nil {
		return err
	}
	jpath := filepath.Join(s.dir, journalName)
	if err := os.Truncate(jpath, 0); err != nil {
		return err
	}
	j, err := openJournal(jpath)
	if err != nil {
		return err
	}
	s.j, s.snap, s.tail = j, snap, nil
	s.armJournalHookLocked()
	return nil
}

// Close releases the journal file. The store stays readable on disk.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.Close()
}
