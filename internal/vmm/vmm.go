// Package vmm is the VM management substrate (the role Snooze plays in
// the paper's prototype). It owns the private site's VM lifecycle:
// placement on physical nodes, boot and shutdown latencies, a configurable
// hosting-capacity cap (the paper fixes 50 VMs on 9 nodes), disk images,
// and optional crash injection for failure testing.
//
// The manager is asynchronous in simulated time: Start and Stop return
// immediately and invoke completion callbacks after the sampled operation
// latency, exactly as Meryn's Resource Manager experiences Snooze.
package vmm

import (
	"errors"
	"fmt"

	"meryn/internal/cluster"
	"meryn/internal/metrics"
	"meryn/internal/sim"
	"meryn/internal/stats"
)

// State is a VM lifecycle state.
type State int

// VM lifecycle states.
const (
	StateProvisioning State = iota // placement accepted, boot in progress
	StateRunning
	StateStopping
	StateTerminated
	StateCrashed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateProvisioning:
		return "provisioning"
	case StateRunning:
		return "running"
	case StateStopping:
		return "stopping"
	case StateTerminated:
		return "terminated"
	case StateCrashed:
		return "crashed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Shape is the fixed VM instance shape exchanged between VCs (paper §2:
// coarse-grained VM currency). The default mirrors an EC2 medium
// instance: 2 vCPUs, 3.75 GB.
type Shape struct {
	Cores    int
	MemoryMB int
}

// DefaultShape is the paper's EC2-medium-like instance model.
var DefaultShape = Shape{Cores: 2, MemoryMB: 3840}

// VM is one virtual machine instance.
type VM struct {
	ID          string
	Image       string
	Shape       Shape
	State       State
	Site        string
	SpeedFactor float64 // inherited from the hosting node
	Cloud       bool    // true for public-cloud VMs (set by package cloud)

	node *cluster.Node
}

// NodeID returns the ID of the physical node hosting the VM. Chaos
// campaigns use it to build correlated failure domains: a site outage
// crashes every VM sharing a physical node, not a random VM sample.
func (vm *VM) NodeID() string {
	if vm.node == nil {
		return ""
	}
	return vm.node.ID
}

// Latencies configures VM operation costs. Zero-value fields default to
// constants of zero, which is convenient in unit tests; realistic values
// come from DefaultLatencies.
type Latencies struct {
	Boot     stats.Dist // image deploy + boot + daemon start
	Shutdown stats.Dist // drain + halt
}

// DefaultLatencies reflects the calibration in DESIGN.md: combined with
// the Meryn pipeline latencies it reproduces the paper's Table 1
// processing-time ranges.
func DefaultLatencies() Latencies {
	return Latencies{
		Boot:     stats.Uniform{Lo: 15, Hi: 22},
		Shutdown: stats.Uniform{Lo: 8, Hi: 12},
	}
}

// Errors returned by Manager operations.
var (
	ErrCapacity  = errors.New("vmm: hosting capacity exhausted")
	ErrNotFound  = errors.New("vmm: no such VM")
	ErrBadState  = errors.New("vmm: VM is not in a valid state for this operation")
	ErrNoImage   = errors.New("vmm: image not registered")
	ErrZeroShape = errors.New("vmm: VM shape has no resources")
)

// Config configures a Manager.
type Config struct {
	Site      *cluster.Site
	Shape     Shape
	MaxVMs    int // hosting-capacity cap; 0 means physical capacity only
	Latencies Latencies
	Seed      int64

	// CrashMTBF, when non-nil, samples the time-to-crash for each
	// running VM (failure injection). OnCrash is invoked after a crash.
	CrashMTBF stats.Dist
	OnCrash   func(*VM)
}

// Manager is the VM management system for one site.
type Manager struct {
	eng    *sim.Engine
	cfg    Config
	rng    *sim.RNG
	images map[string]bool
	vms    map[string]*VM
	nextID int
	active int // provisioning + running + stopping

	// UsedGauge tracks VMs that are provisioning or running.
	UsedGauge *metrics.Gauge
	// Ops counts completed lifecycle operations.
	Starts  metrics.Counter
	Stops   metrics.Counter
	Crashes metrics.Counter
}

// New returns a Manager on the given engine.
func New(eng *sim.Engine, cfg Config) (*Manager, error) {
	if cfg.Site == nil {
		return nil, errors.New("vmm: Config.Site is required")
	}
	if cfg.Shape == (Shape{}) {
		cfg.Shape = DefaultShape
	}
	if cfg.Shape.Cores <= 0 || cfg.Shape.MemoryMB <= 0 {
		return nil, ErrZeroShape
	}
	if cfg.Latencies.Boot == nil {
		cfg.Latencies.Boot = stats.Constant{}
	}
	if cfg.Latencies.Shutdown == nil {
		cfg.Latencies.Shutdown = stats.Constant{}
	}
	phys := cfg.Site.VMCapacity(cfg.Shape.Cores, cfg.Shape.MemoryMB)
	if cfg.MaxVMs <= 0 || cfg.MaxVMs > phys {
		cfg.MaxVMs = phys
	}
	return &Manager{
		eng:       eng,
		cfg:       cfg,
		rng:       sim.NewRNG(cfg.Seed, "vmm/"+cfg.Site.Name),
		images:    make(map[string]bool),
		vms:       make(map[string]*VM),
		UsedGauge: metrics.NewGauge("vmm/" + cfg.Site.Name + "/used"),
	}, nil
}

// RegisterImage makes a framework disk image available (paper §3.5: "for
// each framework there is a customized VM disk image").
func (m *Manager) RegisterImage(name string) { m.images[name] = true }

// HasImage reports whether an image is registered.
func (m *Manager) HasImage(name string) bool { return m.images[name] }

// Capacity returns the hosting-capacity cap.
func (m *Manager) Capacity() int { return m.cfg.MaxVMs }

// Active returns the number of VMs currently occupying capacity.
func (m *Manager) Active() int { return m.active }

// Free returns remaining hosting capacity.
func (m *Manager) Free() int { return m.cfg.MaxVMs - m.active }

// Shape returns the managed instance shape.
func (m *Manager) Shape() Shape { return m.cfg.Shape }

// Get returns a VM by ID.
func (m *Manager) Get(id string) (*VM, error) {
	vm, ok := m.vms[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return vm, nil
}

// List returns all VMs in a given state.
func (m *Manager) List(s State) []*VM {
	var out []*VM
	for i := 0; i < m.nextID; i++ {
		id := m.vmID(i)
		if vm, ok := m.vms[id]; ok && vm.State == s {
			out = append(out, vm)
		}
	}
	return out
}

// StateCounts returns how many tracked VMs are in each lifecycle state.
func (m *Manager) StateCounts() map[State]int {
	out := make(map[State]int)
	for _, vm := range m.vms {
		out[vm.State]++
	}
	return out
}

// Audit checks the manager's internal conservation invariants: the
// active count equals the recount of provisioning+running+stopping VMs,
// stays within [0, Capacity], and agrees with UsedGauge. It returns the
// first violation found, or nil. The platform Auditor calls this at
// every audit barrier.
func (m *Manager) Audit() error {
	counts := m.StateCounts()
	live := counts[StateProvisioning] + counts[StateRunning] + counts[StateStopping]
	if live != m.active {
		return fmt.Errorf("vmm: active=%d but state recount=%d (prov=%d run=%d stop=%d)",
			m.active, live, counts[StateProvisioning], counts[StateRunning], counts[StateStopping])
	}
	if m.active < 0 || m.active > m.cfg.MaxVMs {
		return fmt.Errorf("vmm: active=%d outside [0, %d]", m.active, m.cfg.MaxVMs)
	}
	if g := m.UsedGauge.Value(); g != m.active {
		return fmt.Errorf("vmm: used gauge %d disagrees with active %d", g, m.active)
	}
	return nil
}

func (m *Manager) vmID(i int) string {
	return fmt.Sprintf("%s-vm%03d", m.cfg.Site.Name, i)
}

// Start provisions a VM with the given framework image and calls done
// when it is running (or immediately, synchronously, when placement
// fails). The error paths are: unregistered image, capacity cap, or no
// physical node with room.
func (m *Manager) Start(image string, done func(*VM, error)) {
	if done == nil {
		panic("vmm: Start with nil completion")
	}
	if !m.images[image] {
		done(nil, fmt.Errorf("%w: %q", ErrNoImage, image))
		return
	}
	if m.active >= m.cfg.MaxVMs {
		done(nil, ErrCapacity)
		return
	}
	node, err := m.cfg.Site.FirstFit(m.cfg.Shape.Cores, m.cfg.Shape.MemoryMB)
	if err != nil {
		done(nil, fmt.Errorf("vmm: placement failed: %w", err))
		return
	}
	if err := node.Reserve(m.cfg.Shape.Cores, m.cfg.Shape.MemoryMB); err != nil {
		done(nil, err)
		return
	}
	vm := &VM{
		ID:          m.vmID(m.nextID),
		Image:       image,
		Shape:       m.cfg.Shape,
		State:       StateProvisioning,
		Site:        m.cfg.Site.Name,
		SpeedFactor: node.SpeedFactor,
		node:        node,
	}
	m.nextID++
	m.vms[vm.ID] = vm
	m.active++
	m.UsedGauge.Add(m.eng.Now(), 1)

	boot := sim.Seconds(m.cfg.Latencies.Boot.Sample(m.rng))
	m.eng.Schedule(boot, func() {
		if vm.State != StateProvisioning {
			return // stopped or crashed while booting
		}
		vm.State = StateRunning
		m.Starts.Inc()
		m.scheduleCrash(vm)
		done(vm, nil)
	})
}

// StartDeployed provisions a VM that is immediately running, bypassing
// boot latency. It models the initial system deployment (paper §3.2: the
// Resource Manager "is responsible for the initial system deployment"),
// which completes before the measurement window opens.
func (m *Manager) StartDeployed(image string) (*VM, error) {
	if !m.images[image] {
		return nil, fmt.Errorf("%w: %q", ErrNoImage, image)
	}
	if m.active >= m.cfg.MaxVMs {
		return nil, ErrCapacity
	}
	node, err := m.cfg.Site.FirstFit(m.cfg.Shape.Cores, m.cfg.Shape.MemoryMB)
	if err != nil {
		return nil, fmt.Errorf("vmm: placement failed: %w", err)
	}
	if err := node.Reserve(m.cfg.Shape.Cores, m.cfg.Shape.MemoryMB); err != nil {
		return nil, err
	}
	vm := &VM{
		ID:          m.vmID(m.nextID),
		Image:       image,
		Shape:       m.cfg.Shape,
		State:       StateRunning,
		Site:        m.cfg.Site.Name,
		SpeedFactor: node.SpeedFactor,
		node:        node,
	}
	m.nextID++
	m.vms[vm.ID] = vm
	m.active++
	m.UsedGauge.Add(m.eng.Now(), 1)
	m.Starts.Inc()
	m.scheduleCrash(vm)
	return vm, nil
}

// Stop shuts a VM down and calls done when terminated. Stopping a VM that
// is provisioning aborts the boot. Stopping a terminated or crashed VM
// reports ErrBadState synchronously.
func (m *Manager) Stop(id string, done func(error)) {
	if done == nil {
		panic("vmm: Stop with nil completion")
	}
	vm, ok := m.vms[id]
	if !ok {
		done(fmt.Errorf("%w: %s", ErrNotFound, id))
		return
	}
	if vm.State == StateTerminated || vm.State == StateCrashed || vm.State == StateStopping {
		done(fmt.Errorf("%w: %s is %v", ErrBadState, id, vm.State))
		return
	}
	vm.State = StateStopping
	lat := sim.Seconds(m.cfg.Latencies.Shutdown.Sample(m.rng))
	m.eng.Schedule(lat, func() {
		if vm.State != StateStopping {
			return
		}
		m.release(vm, StateTerminated)
		m.Stops.Inc()
		done(nil)
	})
}

func (m *Manager) release(vm *VM, final State) {
	vm.State = final
	vm.node.Release(vm.Shape.Cores, vm.Shape.MemoryMB)
	m.active--
	m.UsedGauge.Add(m.eng.Now(), -1)
}

// Crash forcibly fails a running VM immediately (deterministic fault
// injection for tests and chaos experiments; stochastic injection uses
// Config.CrashMTBF). OnCrash fires as for a spontaneous crash.
func (m *Manager) Crash(id string) error {
	vm, ok := m.vms[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if vm.State != StateRunning {
		return fmt.Errorf("%w: %s is %v", ErrBadState, id, vm.State)
	}
	m.release(vm, StateCrashed)
	m.Crashes.Inc()
	if m.cfg.OnCrash != nil {
		m.cfg.OnCrash(vm)
	}
	return nil
}

func (m *Manager) scheduleCrash(vm *VM) {
	if m.cfg.CrashMTBF == nil {
		return
	}
	ttf := sim.Seconds(m.cfg.CrashMTBF.Sample(m.rng))
	m.eng.Schedule(ttf, func() {
		if vm.State != StateRunning {
			return
		}
		m.release(vm, StateCrashed)
		m.Crashes.Inc()
		if m.cfg.OnCrash != nil {
			m.cfg.OnCrash(vm)
		}
	})
}
