package vmm

import (
	"errors"
	"fmt"
	"sort"

	"meryn/internal/sim"
)

// This file models Snooze's defining trait: self-organizing hierarchical
// management (Feller et al., CCGRID 2012 — reference [6] of the paper).
// A Hierarchy arranges one Group Leader (GL) above Group Managers (GMs),
// each supervising a set of Local Controllers (LCs, one per physical
// node). Heartbeats flow upward; missed heartbeats trigger failure
// detection, LC reassignment and deterministic leader re-election. The
// Meryn Resource Manager itself only needs start/stop/describe, so the
// hierarchy is an optional management plane over Manager — exactly the
// role Snooze's hierarchy plays beneath its client API.

// Role is a hierarchy member's current role.
type Role int

// Hierarchy roles.
const (
	RoleLocalController Role = iota
	RoleGroupManager
	RoleGroupLeader
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleGroupLeader:
		return "group-leader"
	case RoleGroupManager:
		return "group-manager"
	default:
		return "local-controller"
	}
}

// member is one management entity in the hierarchy.
type member struct {
	id        string
	role      Role
	alive     bool
	managerID string   // for LCs: supervising GM
	charges   []string // for GMs: supervised LC ids (sorted)
	lastBeat  sim.Time
}

// HierarchyConfig tunes the management plane.
type HierarchyConfig struct {
	GroupManagers     int      // number of GMs (default 2)
	HeartbeatInterval sim.Time // default 3 s
	FailureTimeout    sim.Time // missed-beat window; default 3 intervals
}

// Hierarchy is a Snooze-like management overlay for one site.
type Hierarchy struct {
	eng     *sim.Engine
	cfg     HierarchyConfig
	members map[string]*member
	leader  string
	ticker  *sim.Timer

	// Failovers counts GM/GL replacements performed.
	Failovers int
	// Reassignments counts LCs moved between GMs.
	Reassignments int
}

// Errors returned by Hierarchy operations.
var (
	ErrUnknownMember = errors.New("vmm: unknown hierarchy member")
	ErrDeadMember    = errors.New("vmm: hierarchy member is not alive")
)

// NewHierarchy builds the overlay for a site with the given node IDs
// (typically one LC per physical node). GMs and the GL are dedicated
// entities, as in Snooze's default deployment.
func NewHierarchy(eng *sim.Engine, nodeIDs []string, cfg HierarchyConfig) *Hierarchy {
	if cfg.GroupManagers <= 0 {
		cfg.GroupManagers = 2
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = sim.Seconds(3)
	}
	if cfg.FailureTimeout <= 0 {
		cfg.FailureTimeout = 3 * cfg.HeartbeatInterval
	}
	h := &Hierarchy{eng: eng, cfg: cfg, members: make(map[string]*member)}

	var gmIDs []string
	for i := 0; i < cfg.GroupManagers; i++ {
		id := fmt.Sprintf("gm-%02d", i)
		h.members[id] = &member{id: id, role: RoleGroupManager, alive: true, lastBeat: eng.Now()}
		gmIDs = append(gmIDs, id)
	}
	for i, nid := range nodeIDs {
		id := "lc-" + nid
		gm := gmIDs[i%len(gmIDs)]
		m := &member{id: id, role: RoleLocalController, alive: true, managerID: gm, lastBeat: eng.Now()}
		h.members[id] = m
		h.members[gm].charges = append(h.members[gm].charges, id)
	}
	for _, gm := range gmIDs {
		sort.Strings(h.members[gm].charges)
	}
	h.electLeader()
	return h
}

// Start begins the heartbeat/monitoring loop. Stop it with Stop; an
// unstopped loop keeps the simulation's event queue alive.
func (h *Hierarchy) Start() {
	if h.ticker != nil {
		return
	}
	h.ticker = h.eng.Every(h.cfg.HeartbeatInterval, h.tick)
}

// Stop halts monitoring.
func (h *Hierarchy) Stop() {
	if h.ticker != nil {
		h.ticker.Cancel()
		h.ticker = nil
	}
}

// Leader returns the current Group Leader's ID.
func (h *Hierarchy) Leader() string { return h.leader }

// ManagerOf returns the GM supervising an LC.
func (h *Hierarchy) ManagerOf(lcID string) (string, error) {
	m, ok := h.members[lcID]
	if !ok || m.role != RoleLocalController {
		return "", fmt.Errorf("%w: %s", ErrUnknownMember, lcID)
	}
	return m.managerID, nil
}

// Charges returns the LC ids supervised by a GM (sorted).
func (h *Hierarchy) Charges(gmID string) []string {
	m, ok := h.members[gmID]
	if !ok {
		return nil
	}
	out := make([]string, len(m.charges))
	copy(out, m.charges)
	return out
}

// AliveGroupManagers lists alive GMs (sorted).
func (h *Hierarchy) AliveGroupManagers() []string {
	var out []string
	for id, m := range h.members {
		if m.role == RoleGroupManager && m.alive {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Kill marks a member failed. Detection (and any failover) happens on
// the next monitoring tick after the failure timeout elapses, as with
// real heartbeat protocols.
func (h *Hierarchy) Kill(id string) error {
	m, ok := h.members[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownMember, id)
	}
	if !m.alive {
		return fmt.Errorf("%w: %s", ErrDeadMember, id)
	}
	m.alive = false
	return nil
}

// tick advances heartbeats for alive members and runs failure detection.
func (h *Hierarchy) tick() {
	now := h.eng.Now()
	for _, m := range h.members {
		if m.alive {
			m.lastBeat = now
		}
	}
	// Detect the dead GL first (the GMs re-elect), then dead GMs (the GL
	// redistributes their LCs).
	if leader := h.members[h.leader]; h.leader != "" && (leader == nil || !leader.alive) {
		h.Failovers++
		h.electLeader()
	}
	var dead []string
	for id, m := range h.members {
		if (m.role == RoleGroupManager || m.role == RoleGroupLeader) &&
			!m.alive && now-m.lastBeat >= h.cfg.FailureTimeout {
			dead = append(dead, id)
		}
	}
	sort.Strings(dead)
	for _, id := range dead {
		h.failoverGM(id)
	}
}

// electLeader promotes the lexicographically smallest alive GM to GL —
// a deterministic stand-in for Snooze's ZooKeeper-style election.
func (h *Hierarchy) electLeader() {
	alive := h.AliveGroupManagers()
	if len(alive) == 0 {
		h.leader = ""
		return
	}
	h.leader = alive[0]
	h.members[h.leader].role = RoleGroupLeader
}

// failoverGM redistributes a dead GM's LCs across surviving GMs.
func (h *Hierarchy) failoverGM(gmID string) {
	dead := h.members[gmID]
	if len(dead.charges) == 0 {
		return
	}
	alive := h.AliveGroupManagers()
	// The GL also supervises LCs if it is the only survivor.
	if len(alive) == 0 && h.leader != "" && h.members[h.leader].alive {
		alive = []string{h.leader}
	}
	if len(alive) == 0 {
		return // nobody left; LCs orphaned until new GMs join
	}
	for i, lcID := range dead.charges {
		target := alive[i%len(alive)]
		h.members[lcID].managerID = target
		h.members[target].charges = append(h.members[target].charges, lcID)
		h.Reassignments++
	}
	for _, gm := range alive {
		sort.Strings(h.members[gm].charges)
	}
	dead.charges = nil
}

// AddGroupManager joins a fresh GM (healing after failures).
func (h *Hierarchy) AddGroupManager(id string) error {
	if _, dup := h.members[id]; dup {
		return fmt.Errorf("vmm: hierarchy member %s already exists", id)
	}
	h.members[id] = &member{id: id, role: RoleGroupManager, alive: true, lastBeat: h.eng.Now()}
	if h.leader == "" {
		h.electLeader()
	}
	return nil
}
