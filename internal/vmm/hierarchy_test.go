package vmm

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"meryn/internal/sim"
)

func nodeIDs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node%02d", i)
	}
	return out
}

func TestHierarchyConstruction(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHierarchy(eng, nodeIDs(9), HierarchyConfig{GroupManagers: 3})
	// One GM became leader; two remain GMs.
	if h.Leader() == "" {
		t.Fatal("no leader elected")
	}
	if got := len(h.AliveGroupManagers()); got != 2 {
		t.Fatalf("alive GMs = %d, want 2 (third is the leader)", got)
	}
	// Every LC has a supervising GM and every charge is accounted for.
	total := 0
	for _, gm := range append(h.AliveGroupManagers(), h.Leader()) {
		total += len(h.Charges(gm))
	}
	if total != 9 {
		t.Fatalf("charges = %d, want 9", total)
	}
	gm, err := h.ManagerOf("lc-node00")
	if err != nil || gm == "" {
		t.Fatalf("ManagerOf: %q, %v", gm, err)
	}
	if h.Failovers != 0 {
		t.Fatalf("initial election counted as failover: %d", h.Failovers)
	}
}

func TestHierarchyManagerOfErrors(t *testing.T) {
	h := NewHierarchy(sim.NewEngine(), nodeIDs(2), HierarchyConfig{})
	if _, err := h.ManagerOf("ghost"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("err = %v", err)
	}
	if _, err := h.ManagerOf("gm-00"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("GM is not an LC: err = %v", err)
	}
}

func TestGroupManagerFailover(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHierarchy(eng, nodeIDs(6), HierarchyConfig{GroupManagers: 3})
	h.Start()
	defer h.Stop()

	victims := h.AliveGroupManagers()
	victim := victims[0]
	orphans := h.Charges(victim)
	if len(orphans) == 0 {
		t.Fatal("victim GM supervises nothing; bad setup")
	}
	if err := h.Kill(victim); err != nil {
		t.Fatal(err)
	}
	// Failure detection needs the timeout window plus a tick.
	eng.Run(eng.Now() + sim.Seconds(15))
	for _, lc := range orphans {
		gm, err := h.ManagerOf(lc)
		if err != nil {
			t.Fatal(err)
		}
		if gm == victim {
			t.Fatalf("LC %s still assigned to dead GM", lc)
		}
	}
	if h.Reassignments != len(orphans) {
		t.Fatalf("reassignments = %d, want %d", h.Reassignments, len(orphans))
	}
	if len(h.Charges(victim)) != 0 {
		t.Fatal("dead GM retains charges")
	}
}

func TestLeaderFailover(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHierarchy(eng, nodeIDs(4), HierarchyConfig{GroupManagers: 2})
	h.Start()
	defer h.Stop()

	old := h.Leader()
	if err := h.Kill(old); err != nil {
		t.Fatal(err)
	}
	eng.Run(eng.Now() + sim.Seconds(15))
	if h.Leader() == old || h.Leader() == "" {
		t.Fatalf("leader = %q after killing %q", h.Leader(), old)
	}
	if h.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", h.Failovers)
	}
	// The old leader's charges moved to survivors.
	total := 0
	for _, lc := range nodeIDs(4) {
		gm, err := h.ManagerOf("lc-" + lc)
		if err != nil {
			t.Fatal(err)
		}
		if gm == old {
			t.Fatalf("LC lc-%s still under dead leader", lc)
		}
		total++
	}
	if total != 4 {
		t.Fatalf("supervised LCs = %d", total)
	}
}

func TestLastSurvivorSupervisesEverything(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHierarchy(eng, nodeIDs(4), HierarchyConfig{GroupManagers: 2})
	h.Start()
	defer h.Stop()

	// Kill every non-leader GM; the GL absorbs all LCs.
	for _, gm := range h.AliveGroupManagers() {
		if err := h.Kill(gm); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run(eng.Now() + sim.Seconds(15))
	if got := len(h.Charges(h.Leader())); got != 4 {
		t.Fatalf("leader charges = %d, want all 4", got)
	}
}

func TestKillErrors(t *testing.T) {
	h := NewHierarchy(sim.NewEngine(), nodeIDs(1), HierarchyConfig{})
	if err := h.Kill("ghost"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("err = %v", err)
	}
	if err := h.Kill("gm-01"); err != nil {
		t.Fatal(err)
	}
	if err := h.Kill("gm-01"); !errors.Is(err, ErrDeadMember) {
		t.Fatalf("double kill err = %v", err)
	}
}

func TestAddGroupManagerHeals(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHierarchy(eng, nodeIDs(2), HierarchyConfig{GroupManagers: 1})
	h.Start()
	defer h.Stop()
	// GroupManagers=1: the sole GM is the leader. Kill it.
	if err := h.Kill(h.Leader()); err != nil {
		t.Fatal(err)
	}
	eng.Run(eng.Now() + sim.Seconds(15))
	if h.Leader() != "" {
		t.Fatalf("leader = %q, want none (all dead)", h.Leader())
	}
	if err := h.AddGroupManager("gm-99"); err != nil {
		t.Fatal(err)
	}
	if h.Leader() != "gm-99" {
		t.Fatalf("leader = %q after join, want gm-99", h.Leader())
	}
	if err := h.AddGroupManager("gm-99"); err == nil {
		t.Fatal("duplicate join must fail")
	}
}

func TestRoleString(t *testing.T) {
	for r, want := range map[Role]string{
		RoleLocalController: "local-controller",
		RoleGroupManager:    "group-manager",
		RoleGroupLeader:     "group-leader",
	} {
		if r.String() != want {
			t.Fatalf("%d.String() = %q", r, r.String())
		}
	}
}

func TestStartStopIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHierarchy(eng, nodeIDs(1), HierarchyConfig{})
	h.Start()
	h.Start() // no-op
	h.Stop()
	h.Stop() // no-op
	eng.RunAll()
	// The queue must drain: heartbeats were cancelled.
	if eng.Pending() != 0 {
		t.Fatalf("pending events = %d after Stop", eng.Pending())
	}
}

// Property: after any sequence of GM kills (keeping at least one member
// alive), every LC is supervised by an alive member and exactly once.
func TestPropertyHierarchySupervisionInvariant(t *testing.T) {
	f := func(killMask uint8) bool {
		eng := sim.NewEngine()
		h := NewHierarchy(eng, nodeIDs(8), HierarchyConfig{GroupManagers: 4})
		h.Start()
		defer h.Stop()
		ids := append(h.AliveGroupManagers(), h.Leader())
		killed := 0
		for i, id := range ids {
			if killMask&(1<<i) != 0 && killed < len(ids)-1 {
				if h.Kill(id) != nil {
					return false
				}
				killed++
			}
		}
		eng.Run(eng.Now() + sim.Seconds(30))
		seen := map[string]int{}
		for _, nid := range nodeIDs(8) {
			gm, err := h.ManagerOf("lc-" + nid)
			if err != nil {
				return false
			}
			seen[gm]++
		}
		charges := 0
		for gm := range seen {
			// Supervisor must be alive (= still has role and appears in
			// charges bookkeeping).
			found := false
			for _, alive := range append(h.AliveGroupManagers(), h.Leader()) {
				if gm == alive {
					found = true
				}
			}
			if !found {
				return false
			}
			charges += len(h.Charges(gm))
		}
		return charges == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}
