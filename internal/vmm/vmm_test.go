package vmm

import (
	"errors"
	"testing"
	"testing/quick"

	"meryn/internal/cluster"
	"meryn/internal/sim"
	"meryn/internal/stats"
)

func testSite() *cluster.Site {
	return cluster.New(cluster.Config{
		Name: "priv", Nodes: 9, CoresPerNode: 12, MemoryMBPerNode: 49152, SpeedFactor: 0.928,
	})
}

func newManager(t *testing.T, eng *sim.Engine, cfg Config) *Manager {
	t.Helper()
	if cfg.Site == nil {
		cfg.Site = testSite()
	}
	m, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterImage("batch")
	return m
}

func mustStart(t *testing.T, eng *sim.Engine, m *Manager, image string) *VM {
	t.Helper()
	var got *VM
	m.Start(image, func(vm *VM, err error) {
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
		got = vm
	})
	eng.RunAll()
	if got == nil {
		t.Fatal("Start completion never fired")
	}
	return got
}

func TestStartRunsVM(t *testing.T) {
	eng := sim.NewEngine()
	m := newManager(t, eng, Config{Latencies: Latencies{Boot: stats.Constant{V: 20}}})
	vm := mustStart(t, eng, m, "batch")
	if vm.State != StateRunning {
		t.Fatalf("state = %v", vm.State)
	}
	if eng.Now() != sim.Seconds(20) {
		t.Fatalf("boot completed at %v, want 20s", eng.Now())
	}
	if vm.SpeedFactor != 0.928 {
		t.Fatalf("speed = %v, want node speed", vm.SpeedFactor)
	}
	if m.Active() != 1 || m.Free() != m.Capacity()-1 {
		t.Fatalf("accounting wrong: active=%d free=%d", m.Active(), m.Free())
	}
	if m.Starts.Count != 1 {
		t.Fatalf("Starts = %d", m.Starts.Count)
	}
}

func TestStartUnknownImage(t *testing.T) {
	eng := sim.NewEngine()
	m := newManager(t, eng, Config{})
	var gotErr error
	m.Start("nope", func(vm *VM, err error) { gotErr = err })
	if !errors.Is(gotErr, ErrNoImage) {
		t.Fatalf("err = %v, want ErrNoImage", gotErr)
	}
}

func TestCapacityCap(t *testing.T) {
	eng := sim.NewEngine()
	m := newManager(t, eng, Config{MaxVMs: 2})
	mustStart(t, eng, m, "batch")
	mustStart(t, eng, m, "batch")
	var gotErr error
	m.Start("batch", func(vm *VM, err error) { gotErr = err })
	if !errors.Is(gotErr, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", gotErr)
	}
}

func TestPhysicalCapacityBoundsCap(t *testing.T) {
	eng := sim.NewEngine()
	m := newManager(t, eng, Config{MaxVMs: 1000})
	// 9 nodes x min(12/2, 49152/3840)=6 VMs = 54 physical capacity.
	if m.Capacity() != 54 {
		t.Fatalf("Capacity = %d, want clamped 54", m.Capacity())
	}
}

func TestPaperCapacityFifty(t *testing.T) {
	eng := sim.NewEngine()
	m := newManager(t, eng, Config{MaxVMs: 50})
	if m.Capacity() != 50 {
		t.Fatalf("Capacity = %d, want 50", m.Capacity())
	}
	started := 0
	for i := 0; i < 60; i++ {
		m.Start("batch", func(vm *VM, err error) {
			if err == nil {
				started++
			}
		})
	}
	eng.RunAll()
	if started != 50 {
		t.Fatalf("started %d VMs, want exactly 50", started)
	}
}

func TestStopTerminatesAndFreesCapacity(t *testing.T) {
	eng := sim.NewEngine()
	m := newManager(t, eng, Config{Latencies: Latencies{Shutdown: stats.Constant{V: 10}}})
	vm := mustStart(t, eng, m, "batch")
	begin := eng.Now()
	stopped := false
	m.Stop(vm.ID, func(err error) {
		if err != nil {
			t.Fatalf("Stop: %v", err)
		}
		stopped = true
	})
	eng.RunAll()
	if !stopped {
		t.Fatal("Stop completion never fired")
	}
	if eng.Now()-begin != sim.Seconds(10) {
		t.Fatalf("shutdown took %v, want 10s", eng.Now()-begin)
	}
	if vm.State != StateTerminated {
		t.Fatalf("state = %v", vm.State)
	}
	if m.Active() != 0 {
		t.Fatalf("Active = %d after stop", m.Active())
	}
	if m.Stops.Count != 1 {
		t.Fatalf("Stops = %d", m.Stops.Count)
	}
}

func TestStopUnknownAndBadState(t *testing.T) {
	eng := sim.NewEngine()
	m := newManager(t, eng, Config{})
	var err1 error
	m.Stop("ghost", func(err error) { err1 = err })
	if !errors.Is(err1, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err1)
	}
	vm := mustStart(t, eng, m, "batch")
	m.Stop(vm.ID, func(error) {})
	var err2 error
	m.Stop(vm.ID, func(err error) { err2 = err }) // already stopping
	if !errors.Is(err2, ErrBadState) {
		t.Fatalf("err = %v, want ErrBadState", err2)
	}
}

func TestStopDuringBootAborts(t *testing.T) {
	eng := sim.NewEngine()
	m := newManager(t, eng, Config{Latencies: Latencies{
		Boot:     stats.Constant{V: 20},
		Shutdown: stats.Constant{V: 1},
	}})
	bootDone := false
	var vm *VM
	m.Start("batch", func(v *VM, err error) { bootDone = true })
	// The VM is provisioning; find it and stop it before boot completes.
	vms := m.List(StateProvisioning)
	if len(vms) != 1 {
		t.Fatalf("provisioning VMs = %d", len(vms))
	}
	vm = vms[0]
	stopDone := false
	m.Stop(vm.ID, func(err error) {
		if err != nil {
			t.Fatalf("Stop: %v", err)
		}
		stopDone = true
	})
	eng.RunAll()
	if bootDone {
		t.Fatal("boot completion fired for aborted VM")
	}
	if !stopDone || vm.State != StateTerminated {
		t.Fatalf("stop not effective: done=%v state=%v", stopDone, vm.State)
	}
	if m.Active() != 0 {
		t.Fatalf("Active = %d", m.Active())
	}
}

func TestGetAndList(t *testing.T) {
	eng := sim.NewEngine()
	m := newManager(t, eng, Config{})
	vm := mustStart(t, eng, m, "batch")
	got, err := m.Get(vm.ID)
	if err != nil || got != vm {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := m.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(ghost) err = %v", err)
	}
	if lst := m.List(StateRunning); len(lst) != 1 || lst[0] != vm {
		t.Fatalf("List = %v", lst)
	}
}

func TestUsedGaugeTracksLifecycle(t *testing.T) {
	eng := sim.NewEngine()
	m := newManager(t, eng, Config{Latencies: Latencies{
		Boot:     stats.Constant{V: 5},
		Shutdown: stats.Constant{V: 5},
	}})
	vm := mustStart(t, eng, m, "batch")
	m.Stop(vm.ID, func(error) {})
	eng.RunAll()
	s := m.UsedGauge.Series()
	if s.At(0) != 1 {
		t.Fatalf("gauge at 0 = %v, want 1 (provisioning counts)", s.At(0))
	}
	if s.At(sim.Seconds(30)) != 0 {
		t.Fatalf("gauge after stop = %v, want 0", s.At(sim.Seconds(30)))
	}
}

func TestCrashInjection(t *testing.T) {
	eng := sim.NewEngine()
	var crashed *VM
	m := newManager(t, eng, Config{
		Latencies: Latencies{Boot: stats.Constant{V: 1}},
		CrashMTBF: stats.Constant{V: 100},
		OnCrash:   func(vm *VM) { crashed = vm },
	})
	vm := mustStart(t, eng, m, "batch")
	eng.RunAll()
	if crashed != vm {
		t.Fatal("OnCrash not invoked")
	}
	if vm.State != StateCrashed {
		t.Fatalf("state = %v", vm.State)
	}
	if m.Crashes.Count != 1 {
		t.Fatalf("Crashes = %d", m.Crashes.Count)
	}
	if m.Active() != 0 {
		t.Fatal("crashed VM still occupies capacity")
	}
	// Crash must not fire twice even though the timer was scheduled once.
	if eng.Now() != sim.Seconds(101) {
		t.Fatalf("crash at %v, want 101s", eng.Now())
	}
}

func TestCrashAfterStopIsNoop(t *testing.T) {
	eng := sim.NewEngine()
	crashes := 0
	m := newManager(t, eng, Config{
		Latencies: Latencies{Boot: stats.Constant{V: 1}, Shutdown: stats.Constant{V: 1}},
		CrashMTBF: stats.Constant{V: 100},
		OnCrash:   func(*VM) { crashes++ },
	})
	var vm *VM
	m.Start("batch", func(v *VM, err error) {
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
		vm = v
	})
	eng.Run(sim.Seconds(1)) // boot completes; crash timer still pending
	if vm == nil || vm.State != StateRunning {
		t.Fatal("VM not running after boot")
	}
	m.Stop(vm.ID, func(error) {})
	eng.RunAll()
	if crashes != 0 {
		t.Fatal("crash fired on a terminated VM")
	}
	if vm.State != StateTerminated {
		t.Fatalf("state = %v", vm.State)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(sim.NewEngine(), Config{}); err == nil {
		t.Fatal("New without site must fail")
	}
	if _, err := New(sim.NewEngine(), Config{Site: testSite(), Shape: Shape{Cores: -1, MemoryMB: 1}}); err == nil {
		t.Fatal("New with negative shape must fail")
	}
}

func TestDefaultShape(t *testing.T) {
	eng := sim.NewEngine()
	m := newManager(t, eng, Config{})
	if m.Shape() != DefaultShape {
		t.Fatalf("Shape = %+v", m.Shape())
	}
	if DefaultShape.Cores != 2 || DefaultShape.MemoryMB != 3840 {
		t.Fatal("DefaultShape must be the EC2-medium-like 2 cores / 3.75 GB")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateProvisioning: "provisioning",
		StateRunning:      "running",
		StateStopping:     "stopping",
		StateTerminated:   "terminated",
		StateCrashed:      "crashed",
		State(42):         "state(42)",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

// Property: under any interleaving of starts and stops, active VM count
// equals started-minus-released and never exceeds the cap.
func TestPropertyCapacityInvariant(t *testing.T) {
	f := func(ops []bool, capSeed uint8) bool {
		eng := sim.NewEngine()
		maxVMs := int(capSeed%10) + 1
		m, err := New(eng, Config{Site: cluster.New(cluster.Config{
			Name: "p", Nodes: 4, CoresPerNode: 16, MemoryMBPerNode: 65536,
		}), MaxVMs: maxVMs})
		if err != nil {
			return false
		}
		m.RegisterImage("img")
		var running []*VM
		for _, isStart := range ops {
			if isStart {
				m.Start("img", func(vm *VM, err error) {
					if err == nil {
						running = append(running, vm)
					}
				})
			} else if len(running) > 0 {
				vm := running[0]
				running = running[1:]
				m.Stop(vm.ID, func(error) {})
			}
			eng.RunAll()
			if m.Active() > maxVMs || m.Active() < 0 {
				return false
			}
		}
		return m.Active() == len(running)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
