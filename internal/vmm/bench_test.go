package vmm

import (
	"testing"

	"meryn/internal/cluster"
	"meryn/internal/sim"
)

// BenchmarkVMLifecycle measures a full start/stop cycle through the
// manager (placement, boot event, shutdown event).
func BenchmarkVMLifecycle(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	m, err := New(eng, Config{Site: cluster.New(cluster.Config{
		Name: "bench", Nodes: 16, CoresPerNode: 32, MemoryMBPerNode: 131072,
	})})
	if err != nil {
		b.Fatal(err)
	}
	m.RegisterImage("img")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var id string
		m.Start("img", func(vm *VM, err error) {
			if err != nil {
				b.Fatal(err)
			}
			id = vm.ID
		})
		eng.RunAll()
		m.Stop(id, func(err error) {
			if err != nil {
				b.Fatal(err)
			}
		})
		eng.RunAll()
	}
}

// BenchmarkHierarchyFailover measures GM failure detection and LC
// redistribution over a 64-node site.
func BenchmarkHierarchyFailover(b *testing.B) {
	b.ReportAllocs()
	ids := make([]string, 64)
	for i := range ids {
		ids[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		h := NewHierarchy(eng, ids, HierarchyConfig{GroupManagers: 4})
		h.Start()
		gms := h.AliveGroupManagers()
		if err := h.Kill(gms[0]); err != nil {
			b.Fatal(err)
		}
		eng.Run(sim.Seconds(15))
		h.Stop()
	}
}
