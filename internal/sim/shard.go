package sim

import (
	"fmt"
	"sync"
)

// Sharded coordinates one global Engine plus N shard Engines through
// fixed-protocol tick windows, so independent event domains (in Meryn:
// the per-VC Cluster Managers) can dispatch concurrently without giving
// up determinism.
//
// Each window [t0, limit] (limit = t0 + Window - 1, capped by the
// caller's horizon) runs four phases:
//
//  1. global phase — the Global engine runs to limit, exclusively.
//     Shared substrates (VM manager, cloud market, resource manager)
//     live here; global handlers may schedule onto shard engines.
//  2. feed phase — the Feed hook dispatches external arrivals due in
//     the window, exclusively, in arrival order.
//  3. shard phase — every shard engine runs to limit; shards with
//     pending work run on their own goroutines, concurrently. Shard
//     handlers must touch only their shard's state and engine; effects
//     on shared state are queued for the barrier.
//  4. barrier — the Barrier hook merges queued cross-shard effects in
//     a canonical order, exclusively.
//
// Phases never overlap, so only phase 3 is concurrent, and everything
// it reads was sequenced before the window (happens-before via the
// goroutine joins). Determinism then reduces to the Barrier applying
// queued effects in an order independent of goroutine scheduling.
type Sharded struct {
	// Global is the engine for shared substrates. Its clock is the
	// platform clock: after each window all engines sit at the same
	// instant.
	Global *Engine
	// Window is the tick-window width. Larger windows amortize barrier
	// overhead; the window never splits an event (events at the window
	// edge fire inside it), it only bounds how far clocks advance
	// between merges.
	Window Time
	// NextExternal reports the earliest pending external arrival, if
	// any, so windows open early enough to feed it. May be nil.
	NextExternal func() (Time, bool)
	// Feed dispatches external arrivals with times <= limit. May be nil.
	Feed func(limit Time)
	// Barrier merges queued cross-shard effects after the shard phase.
	// May be nil.
	Barrier func(limit Time)

	shards []*Engine
	wg     sync.WaitGroup
	panics []any
}

// NewSharded returns a coordinator with n shard engines around the
// given global engine. Window must be positive.
func NewSharded(global *Engine, n int, window Time) *Sharded {
	if n < 1 {
		panic(fmt.Sprintf("sim: NewSharded with %d shards", n))
	}
	if window <= 0 {
		panic(fmt.Sprintf("sim: NewSharded with non-positive window %v", window))
	}
	s := &Sharded{Global: global, Window: window, panics: make([]any, n)}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, NewEngine())
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard engine i.
func (s *Sharded) Shard(i int) *Engine { return s.shards[i] }

// NextAt returns the earliest pending instant across the global engine,
// all shard engines, and the external arrival source.
func (s *Sharded) NextAt() (Time, bool) {
	best, ok := s.Global.NextAt()
	for _, sh := range s.shards {
		if t, o := sh.NextAt(); o && (!ok || t < best) {
			best, ok = t, true
		}
	}
	if s.NextExternal != nil {
		if t, o := s.NextExternal(); o && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// Pending reports queued events across all engines (external arrivals
// are the caller's to count).
func (s *Sharded) Pending() int {
	n := s.Global.Pending()
	for _, sh := range s.shards {
		n += sh.Pending()
	}
	return n
}

// Fired reports total dispatched events across all engines.
func (s *Sharded) Fired() uint64 {
	n := s.Global.Fired()
	for _, sh := range s.shards {
		n += sh.Fired()
	}
	return n
}

// LastFired returns the latest event time dispatched by any engine.
func (s *Sharded) LastFired() Time {
	t := s.Global.LastFired()
	for _, sh := range s.shards {
		if lf := sh.LastFired(); lf > t {
			t = lf
		}
	}
	return t
}

// RunWindow executes one tick window, holding the window end at or
// below cap. It reports the window's end instant and whether a window
// ran: false means nothing is pending at or before cap, with no clock
// movement. After a true return all engine clocks sit at the returned
// instant.
func (s *Sharded) RunWindow(cap Time) (Time, bool) {
	t0, ok := s.NextAt()
	if !ok || t0 > cap {
		return s.Global.Now(), false
	}
	limit := t0 + s.Window - 1
	if limit > cap || limit < t0 { // second clause: horizon overflow
		limit = cap
	}

	s.Global.Run(limit)
	if s.Feed != nil {
		s.Feed(limit)
	}

	spawned := 0
	for i, sh := range s.shards {
		if t, o := sh.NextAt(); o && t <= limit {
			s.wg.Add(1)
			spawned++
			go s.runShard(i, sh, limit)
			continue
		}
		sh.Run(limit) // no due events: advance the clock inline
	}
	if spawned > 0 {
		s.wg.Wait()
		for i, p := range s.panics {
			if p != nil {
				s.panics[i] = nil
				panic(fmt.Sprintf("sim: shard %d panicked in window ending %v: %v", i, limit, p))
			}
		}
	}

	if s.Barrier != nil {
		s.Barrier(limit)
	}
	return limit, true
}

func (s *Sharded) runShard(i int, sh *Engine, limit Time) {
	defer func() {
		s.panics[i] = recover()
		s.wg.Done()
	}()
	sh.Run(limit)
}

// AdvanceTo moves every engine's clock to t without expecting events
// (callers use it to align clocks with a horizon after the last
// window). Events at or before t, if any remain, still fire — on the
// caller's goroutine, sequentially.
func (s *Sharded) AdvanceTo(t Time) {
	s.Global.Run(t)
	for _, sh := range s.shards {
		sh.Run(t)
	}
}
