// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock through a time-ordered event queue.
// Events scheduled for the same instant fire in scheduling order (stable
// FIFO tie-breaking), which makes simulations fully deterministic given
// deterministic event handlers. All Meryn substrates (VM manager, cloud
// providers, frameworks, managers) run on top of one Engine.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured as an offset from the
// simulation start. The zero Time is the simulation start.
type Time = time.Duration

// Forever is a convenient horizon for Run when the simulation should be
// driven until the event queue drains.
const Forever Time = math.MaxInt64

// Event is a scheduled callback. The callback receives the engine so that
// handlers can schedule follow-up events.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	fn   func()
	canc *bool // optional cancellation flag
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; run independent simulations in separate Engines
// (see exp.Pool for parallel sweeps).
//
// Two hot-path optimizations keep event dispatch cheap:
//
//   - fired events are recycled through a free list, so steady-state
//     simulation (handlers scheduling follow-up events) allocates no
//     event records after warm-up;
//   - events scheduled for the current instant (Schedule(0) cascades,
//     e.g. bid-round fan-outs) go to a FIFO ring instead of the heap,
//     avoiding O(log n) sift work per push/pop for same-instant bursts.
//
// The ring only ever holds events whose time equals Now(): events land
// there at creation when their time is the present, and the dispatch
// loop drains the ring before advancing the clock. Heap events carrying
// the same timestamp as ring events are necessarily older (the clock had
// not yet reached that instant when they were pushed), so interleaving
// by (at, seq) preserves the global FIFO tie-break.
type Engine struct {
	now       Time
	queue     eventQueue
	ring      []*event // FIFO of events at the current instant
	ringPos   int      // consumption cursor into ring
	free      []*event // recycled event records
	seq       uint64
	running   bool
	stopped   bool
	fired     uint64
	lastFired Time // time of the most recently dispatched event
}

// alloc takes an event record from the free list (or allocates one) and
// stamps it with the next sequence number.
func (e *Engine) alloc(at Time, fn func(), canc *bool) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	e.seq++
	ev.at, ev.seq, ev.fn, ev.canc = at, e.seq, fn, canc
	return ev
}

// recycle returns a dispatched (or cancelled) event to the free list,
// dropping its references so closures are not retained.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.canc = nil
	e.free = append(e.free, ev)
}

// add enqueues fn at absolute time t (clamped to the present): the FIFO
// ring for the current instant, the heap for the future.
func (e *Engine) add(t Time, fn func(), canc *bool) {
	if t < e.now {
		t = e.now
	}
	ev := e.alloc(t, fn, canc)
	if t == e.now {
		e.ring = append(e.ring, ev)
		return
	}
	heap.Push(&e.queue, ev)
}

// popNext removes and returns the earliest queued event, interleaving
// ring and heap by (at, seq). It returns nil — leaving the event queued —
// when nothing remains or the earliest event lies beyond the horizon.
func (e *Engine) popNext(until Time) *event {
	var ev *event
	fromRing := e.ringPos < len(e.ring)
	if fromRing && len(e.queue) > 0 {
		r, h := e.ring[e.ringPos], e.queue[0]
		fromRing = r.at < h.at || (r.at == h.at && r.seq < h.seq)
	}
	if fromRing {
		ev = e.ring[e.ringPos]
		if ev.at > until {
			return nil
		}
		e.ring[e.ringPos] = nil
		e.ringPos++
		if e.ringPos == len(e.ring) {
			e.ring = e.ring[:0]
			e.ringPos = 0
		}
		return ev
	}
	if len(e.queue) == 0 {
		return nil
	}
	if e.queue[0].at > until {
		return nil
	}
	return heap.Pop(&e.queue).(*event)
}

// NewEngine returns an Engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.queue) + len(e.ring) - e.ringPos }

// LastFired returns the time of the most recently dispatched event (the
// zero Time when none fired yet). Unlike Now, it does not move when Run
// advances the clock to an event-free horizon.
func (e *Engine) LastFired() Time { return e.lastFired }

// NextAt returns the time of the earliest queued event and whether one
// exists. Cancelled events still count until they drain: NextAt is a
// scheduling bound, not a guarantee that work will run at that instant.
func (e *Engine) NextAt() (Time, bool) {
	if e.ringPos < len(e.ring) {
		return e.now, true
	}
	if len(e.queue) > 0 {
		return e.queue[0].at, true
	}
	return 0, false
}

// Schedule runs fn after delay. A negative delay is an error in the
// caller; it is clamped to zero so the event fires at the current instant
// (after already-queued events for that instant).
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped to
// the present.
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: At called with nil func")
	}
	e.add(t, fn, nil)
}

// Timer is a cancellable scheduled event.
type Timer struct {
	cancelled *bool
}

// Cancel prevents the timer's callback from firing. Cancelling an
// already-fired or already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.cancelled != nil {
		*t.cancelled = true
	}
}

// After schedules fn like Schedule but returns a Timer that can cancel it.
func (e *Engine) After(delay Time, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	cancelled := false
	e.add(e.now+delay, fn, &cancelled)
	return &Timer{cancelled: &cancelled}
}

// Every schedules fn to run periodically with the given period, starting
// after one period. The returned Timer cancels the series. A non-positive
// period panics: it would live-lock the simulation.
func (e *Engine) Every(period Time, fn func()) *Timer {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every with non-positive period %v", period))
	}
	cancelled := false
	var tick func()
	tick = func() {
		fn()
		if !cancelled {
			e.add(e.now+period, tick, &cancelled)
		}
	}
	e.add(e.now+period, tick, &cancelled)
	return &Timer{cancelled: &cancelled}
}

// Stop aborts Run after the current event handler returns.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in time order until the queue is empty, the
// horizon is passed, or Stop is called. It returns the time of the last
// dispatched event (or the current time if none fired). Events scheduled
// exactly at the horizon still fire.
func (e *Engine) Run(until Time) Time {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for !e.stopped {
		ev := e.popNext(until)
		if ev == nil {
			break
		}
		if ev.canc != nil && *ev.canc {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		e.lastFired = ev.at
		fn := ev.fn
		e.recycle(ev)
		fn()
	}
	if !e.stopped && until != Forever && e.now < until {
		// Advance the clock to the horizon (standard DES semantics):
		// callers that intervene between Run calls — e.g. suspending a
		// job "at time t" — must observe Now() == t even when the next
		// queued event lies beyond the horizon.
		e.now = until
	}
	return e.now
}

// RunAll drives the simulation until no events remain.
func (e *Engine) RunAll() Time { return e.Run(Forever) }

// Step dispatches exactly one (non-cancelled) event and reports whether
// one was found. It lets callers interleave simulation progress with
// external termination conditions — e.g. "run until the workload
// settles" in the presence of self-renewing events like crash injection.
func (e *Engine) Step() bool {
	for {
		ev := e.popNext(Forever)
		if ev == nil {
			return false
		}
		if ev.canc != nil && *ev.canc {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		e.lastFired = ev.at
		fn := ev.fn
		e.recycle(ev)
		fn()
		return true
	}
}

// Seconds converts a float64 number of seconds to virtual Time. It is the
// conversion used throughout the Meryn model, where paper quantities are
// expressed in seconds. Rounding (not truncation) makes
// Seconds(ToSeconds(t)) == t for all simulation-scale t.
func Seconds(s float64) Time { return Time(math.Round(s * float64(time.Second))) }

// ToSeconds converts virtual Time to float64 seconds.
func ToSeconds(t Time) float64 { return t.Seconds() }
