package sim

import (
	"strings"
	"sync/atomic"
	"testing"
)

// The window protocol must sequence global → feed → shards → barrier,
// and every engine's clock must land on the window end.
func TestShardedWindowProtocol(t *testing.T) {
	g := NewEngine()
	s := NewSharded(g, 2, Seconds(10))

	var mu atomic.Int32 // phase marker: 1=global ran, 2=feed ran, 3=shards ran
	var trace []string
	g.At(Seconds(1), func() {
		mu.Store(1)
		trace = append(trace, "global@1s")
	})
	fed := false
	s.Feed = func(limit Time) {
		if mu.Load() != 1 {
			t.Errorf("feed ran before global phase")
		}
		if !fed {
			fed = true
			trace = append(trace, "feed")
			s.Shard(0).At(Seconds(3), func() { mu.Store(3) })
			s.Shard(1).At(Seconds(4), func() { mu.Store(3) })
		}
		mu.Store(2)
	}
	barriers := 0
	s.Barrier = func(limit Time) {
		barriers++
		if m := mu.Load(); m != 3 && m != 2 {
			t.Errorf("barrier saw phase marker %d", m)
		}
		trace = append(trace, "barrier")
	}

	end, ok := s.RunWindow(Forever)
	if !ok {
		t.Fatal("expected a window to run")
	}
	if want := Seconds(1) + Seconds(10) - 1; end != want {
		t.Fatalf("window end = %v, want %v", end, want)
	}
	for i := 0; i < s.NumShards(); i++ {
		if now := s.Shard(i).Now(); now != end {
			t.Errorf("shard %d clock = %v, want %v", i, now, end)
		}
	}
	if g.Now() != end {
		t.Errorf("global clock = %v, want %v", g.Now(), end)
	}
	if got := strings.Join(trace, ","); got != "global@1s,feed,barrier" {
		t.Errorf("trace = %s", got)
	}
	if barriers != 1 {
		t.Errorf("barriers = %d", barriers)
	}
}

// Shards with due events run concurrently on separate goroutines; the
// barrier still observes all their effects (join happens-before).
func TestShardedParallelShards(t *testing.T) {
	g := NewEngine()
	s := NewSharded(g, 4, Seconds(100))
	var fired atomic.Int64
	for i := 0; i < 4; i++ {
		sh := s.Shard(i)
		for k := 0; k < 100; k++ {
			sh.At(Seconds(float64(k)), func() { fired.Add(1) })
		}
	}
	if _, ok := s.RunWindow(Forever); !ok {
		t.Fatal("expected a window")
	}
	if fired.Load() != 400 {
		t.Fatalf("fired = %d, want 400", fired.Load())
	}
	if s.Fired() != 400 {
		t.Fatalf("Fired() = %d, want 400", s.Fired())
	}
	if lf := s.LastFired(); lf != Seconds(99) {
		t.Fatalf("LastFired = %v, want %v", lf, Seconds(99))
	}
}

// NextAt spans the global engine, shard engines, and the external
// arrival source.
func TestShardedNextAt(t *testing.T) {
	g := NewEngine()
	s := NewSharded(g, 2, Seconds(10))
	if _, ok := s.NextAt(); ok {
		t.Fatal("empty coordinator reported pending work")
	}
	g.At(Seconds(9), func() {})
	s.Shard(1).At(Seconds(7), func() {})
	ext := Seconds(5)
	s.NextExternal = func() (Time, bool) { return ext, true }
	if at, ok := s.NextAt(); !ok || at != Seconds(5) {
		t.Fatalf("NextAt = %v,%v, want 5s", at, ok)
	}
	ext = Seconds(30)
	if at, ok := s.NextAt(); !ok || at != Seconds(7) {
		t.Fatalf("NextAt = %v,%v, want 7s", at, ok)
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
}

// A horizon cap truncates the window; events beyond the cap stay queued.
func TestShardedRunWindowCap(t *testing.T) {
	g := NewEngine()
	s := NewSharded(g, 1, Seconds(10))
	ran := 0
	s.Shard(0).At(Seconds(2), func() { ran++ })
	s.Shard(0).At(Seconds(6), func() { ran++ })
	end, ok := s.RunWindow(Seconds(4))
	if !ok || end != Seconds(4) {
		t.Fatalf("RunWindow = %v,%v, want 4s,true", end, ok)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (event at 6s is beyond the cap)", ran)
	}
	// Nothing pending at or before the cap: no window runs.
	if _, ok := s.RunWindow(Seconds(4)); ok {
		t.Fatal("window ran with nothing due before the cap")
	}
	s.AdvanceTo(Seconds(5))
	if g.Now() != Seconds(5) || s.Shard(0).Now() != Seconds(5) {
		t.Fatalf("AdvanceTo left clocks at %v / %v", g.Now(), s.Shard(0).Now())
	}
	if ran != 1 {
		t.Fatalf("AdvanceTo fired a beyond-horizon event")
	}
}

// A panic on a shard goroutine surfaces on the coordinator's goroutine.
func TestShardedPanicPropagates(t *testing.T) {
	g := NewEngine()
	s := NewSharded(g, 2, Seconds(10))
	s.Shard(1).At(Seconds(1), func() { panic("boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("shard panic did not propagate")
		}
		if !strings.Contains(r.(string), "boom") || !strings.Contains(r.(string), "shard 1") {
			t.Fatalf("panic = %v", r)
		}
	}()
	s.RunWindow(Forever)
}
