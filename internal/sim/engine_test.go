package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("final Now() = %v, want 3s", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var events []string
	e.Schedule(time.Second, func() {
		events = append(events, "a")
		e.Schedule(time.Second, func() { events = append(events, "c") })
		e.Schedule(0, func() { events = append(events, "b") })
	})
	e.RunAll()
	if len(events) != 3 || events[0] != "a" || events[1] != "b" || events[2] != "c" {
		t.Fatalf("events = %v, want [a b c]", events)
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5*time.Second, func() {
		e.Schedule(-time.Hour, func() { fired = true })
	})
	e.RunAll()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s (clamped)", e.Now())
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.Schedule(1*time.Second, func() { fired = append(fired, 1) })
	e.Schedule(2*time.Second, func() { fired = append(fired, 2) })
	e.Schedule(3*time.Second, func() { fired = append(fired, 3) })
	e.Run(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %v within horizon 2s, want exactly events 1,2", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.RunAll()
	if len(fired) != 3 {
		t.Fatalf("fired %v after RunAll, want 3 events", fired)
	}
}

func TestRunAdvancesToHorizonWhenIdle(t *testing.T) {
	e := NewEngine()
	e.Run(10 * time.Second)
	if e.Now() != 10*time.Second {
		t.Fatalf("Now() = %v, want horizon 10s", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 2 {
		t.Fatalf("count = %d after Stop, want 2", count)
	}
	if e.Pending() != 3 {
		t.Fatalf("Pending() = %d, want 3", e.Pending())
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.After(time.Second, func() { fired = true })
	tm.Cancel()
	e.RunAll()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	// Cancelling again must be a no-op.
	tm.Cancel()
	var nilTimer *Timer
	nilTimer.Cancel() // must not panic
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tm *Timer
	tm = e.Every(10*time.Second, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 3 {
			tm.Cancel()
		}
	})
	e.Run(5 * time.Minute)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	for i, at := range ticks {
		want := time.Duration(i+1) * 10 * time.Second
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestEveryZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewEngine().Every(0, func() {})
}

func TestAtNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) did not panic")
		}
	}()
	NewEngine().At(0, nil)
}

// Heap events carrying the same timestamp as ring events were scheduled
// earlier (lower seq) and must fire first: A fires at 1s, schedules B for
// "now"; C was already queued for 1s and must precede B.
func TestSameInstantHeapBeforeRing(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(time.Second, func() {
		got = append(got, "a")
		e.Schedule(0, func() { got = append(got, "b") })
	})
	e.Schedule(time.Second, func() { got = append(got, "c") })
	e.RunAll()
	if len(got) != 3 || got[0] != "a" || got[1] != "c" || got[2] != "b" {
		t.Fatalf("order = %v, want [a c b]", got)
	}
}

// A cancelled same-instant timer (ring path) must not fire.
func TestTimerCancelSameInstant(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(time.Second, func() {
		tm := e.After(0, func() { fired = true })
		tm.Cancel()
	})
	e.RunAll()
	if fired {
		t.Fatal("cancelled same-instant timer fired")
	}
}

// Recycled event records must not leak state between uses: interleave
// scheduling, cancellation and dispatch over many rounds and count fires.
func TestEventPoolRecycling(t *testing.T) {
	e := NewEngine()
	fired, cancelled := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			e.Schedule(time.Duration(i)*time.Millisecond, func() { fired++ })
		}
		tm := e.After(time.Millisecond, func() { cancelled++ })
		tm.Cancel()
		e.RunAll()
	}
	if fired != 500 {
		t.Fatalf("fired = %d, want 500", fired)
	}
	if cancelled != 0 {
		t.Fatalf("cancelled timers fired %d times", cancelled)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestFiredCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.RunAll()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 1, 1550, 0.5, 84} {
		if got := ToSeconds(Seconds(s)); got != s {
			t.Fatalf("ToSeconds(Seconds(%v)) = %v", s, got)
		}
	}
}

// Property: events always dispatch in nondecreasing time order, whatever
// the insertion order.
func TestPropertyDispatchOrderSorted(t *testing.T) {
	f := func(delays []uint32) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			d := Time(d % 1000000)
			e.Schedule(d*time.Microsecond, func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every scheduled event fires exactly once under RunAll.
func TestPropertyAllEventsFireOnce(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		count := 0
		for _, d := range delays {
			e.Schedule(Time(d)*time.Millisecond, func() { count++ })
		}
		e.RunAll()
		return count == len(delays) && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, "vmm")
	b := NewRNG(42, "vmm")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed+name produced diverging streams")
		}
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	a := NewRNG(42, "vmm")
	b := NewRNG(42, "cloud")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names collide too often: %d/64", same)
	}
}

func TestRNGFork(t *testing.T) {
	a := NewRNG(1, "root").Fork("child")
	b := NewRNG(1, "root").Fork("child")
	if a.Int63() != b.Int63() {
		t.Fatal("Fork is not deterministic")
	}
}

func TestRNGRange(t *testing.T) {
	r := NewRNG(7, "range")
	for i := 0; i < 1000; i++ {
		v := r.Range(7, 15)
		if v < 7 || v > 15 {
			t.Fatalf("Range(7,15) = %v out of bounds", v)
		}
	}
	if r.Range(3, 3) != 3 {
		t.Fatal("degenerate range must return lo")
	}
}

func TestRNGRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(hi<lo) did not panic")
		}
	}()
	NewRNG(1, "x").Range(5, 4)
}

// Property: Range always stays within bounds for arbitrary seeds/bounds.
func TestPropertyRNGRangeBounds(t *testing.T) {
	f := func(seed int64, lo float64, span uint16) bool {
		if lo != lo || lo > 1e100 || lo < -1e100 { // reject NaN/huge
			return true
		}
		hi := lo + float64(span)
		v := NewRNG(seed, "p").Range(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j)*time.Millisecond, func() {})
		}
		e.RunAll()
	}
}

// BenchmarkEngineSteadyState models a long-lived simulation: one engine
// dispatching a self-renewing event chain, the dominant shape inside a
// platform run. With event pooling this is allocation-free per event.
func BenchmarkEngineSteadyState(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	remaining := b.N
	var next func()
	next = func() {
		remaining--
		if remaining > 0 {
			e.Schedule(time.Millisecond, next)
		}
	}
	e.Schedule(time.Millisecond, next)
	e.RunAll()
}

// BenchmarkEngineSameInstantBurst measures the same-instant fan-out shape
// (Schedule(0) cascades during bid rounds): 1000 events at one instant
// per reused engine, exercising the FIFO fast path instead of the heap.
func BenchmarkEngineSameInstantBurst(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Millisecond, func() {
			for j := 0; j < 999; j++ {
				e.Schedule(0, func() {})
			}
		})
		e.RunAll()
	}
}
