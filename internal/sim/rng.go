package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a deterministic random stream. Each simulated component derives
// its own stream from the master seed and a stable name, so adding or
// reordering components does not perturb the draws seen by others —
// a standard variance-reduction discipline for simulation studies.
type RNG struct {
	*rand.Rand
}

// NewRNG returns a stream derived from seed and a stable component name.
func NewRNG(seed int64, name string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	mixed := int64(h.Sum64()) ^ seed
	return &RNG{Rand: rand.New(rand.NewSource(mixed))}
}

// Fork derives a sub-stream, e.g. per-VM or per-application.
func (r *RNG) Fork(name string) *RNG {
	return NewRNG(r.Int63(), name)
}

// Range returns a uniform draw in [lo, hi]. It panics if hi < lo.
func (r *RNG) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("sim: RNG.Range with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}
