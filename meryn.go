// Package meryn is an open, SLA-driven, cloud-bursting PaaS — a faithful
// reproduction of Dib, Parlavantzas and Morin, "Meryn: Open, SLA-driven,
// Cloud Bursting PaaS" (ORMaCloud/HPDC 2013).
//
// The platform hosts multiple elastic virtual clusters (VCs) on a fixed
// pool of private VMs. Each VC is owned by one programming framework
// (batch or MapReduce). Applications arrive through a uniform submission
// interface, negotiate an SLA (deadline + price), and are placed by a
// decentralized auction-style resource selection protocol that chooses
// the cheapest of: free local VMs, VMs borrowed from another VC
// (possibly after suspending that VC's applications), suspending local
// applications, or leasing public-cloud VMs (cloud bursting).
//
// Everything runs on a deterministic discrete-event simulation calibrated
// to the paper's measurements, so experiments are exactly reproducible:
//
//	p, err := meryn.New(meryn.DefaultConfig())
//	if err != nil { ... }
//	res, err := p.Run(meryn.PaperWorkload())
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package meryn

import (
	"meryn/internal/core"
	"meryn/internal/exp"
	"meryn/internal/metrics"
	"meryn/internal/sim"
	"meryn/internal/sla"
	"meryn/internal/vmm"
	"meryn/internal/workload"
)

// Core platform types.
type (
	// Config assembles a platform; start from DefaultConfig.
	Config = core.Config
	// VCConfig describes one virtual cluster.
	VCConfig = core.VCConfig
	// SpotPolicy opts a VC into preemptible (spot) cloud leasing.
	SpotPolicy = core.SpotPolicy
	// AuditConfig configures the always-on invariant auditor.
	AuditConfig = core.AuditConfig
	// Latencies configures the Meryn pipeline latencies.
	Latencies = core.Latencies
	// Policy selects Meryn bidding or static partitioning.
	Policy = core.Policy
	// Platform is an assembled deployment.
	Platform = core.Platform
	// Results summarizes one run.
	Results = core.Results
	// Counters aggregates protocol activity.
	Counters = core.Counters
	// Enforcer reacts to SLA violations (extension point).
	Enforcer = core.Enforcer
	// NoopEnforcer records violations without intervening (default).
	NoopEnforcer = core.NoopEnforcer
	// ScaleOutEnforcer leases extra cloud VMs on projected violations.
	ScaleOutEnforcer = core.ScaleOutEnforcer
	// ClusterManager manages one VC (exposed for enforcers).
	ClusterManager = core.ClusterManager
	// HierarchyConfig tunes the optional Snooze-like management plane.
	HierarchyConfig = vmm.HierarchyConfig
)

// Policies.
const (
	// PolicyMeryn is the paper's decentralized bidding protocol.
	PolicyMeryn = core.PolicyMeryn
	// PolicyStatic is the paper's static-partitioning baseline.
	PolicyStatic = core.PolicyStatic
)

// Session API: the interactive open-platform surface. Open a session
// on a Platform, Submit applications at runtime, respond to SLA offers,
// advance virtual time with Step, observe with Status, and Drain for
// the run summary. Platform.Run is a thin wrapper over this API; the
// merynd daemon serves it over HTTP.
type (
	// Session is an open submission window on a platform.
	Session = core.Session
	// Negotiation is the handle on one submission's SLA negotiation.
	Negotiation = core.Negotiation
	// NegotiationState is a negotiation handle's lifecycle state.
	NegotiationState = core.NegotiationState
	// AppStatus is a point-in-time snapshot of one submission.
	AppStatus = core.AppStatus
	// AppPhase is an application's coarse lifecycle position.
	AppPhase = core.AppPhase
	// SessionEvent is one entry of the session's event log.
	SessionEvent = core.SessionEvent
	// VCStatus is a point-in-time snapshot of one virtual cluster.
	VCStatus = core.VCStatus
	// PlatformMetrics is a platform-wide gauge/counter snapshot.
	PlatformMetrics = core.PlatformMetrics
)

// Negotiation handle states.
const (
	// NegotiationPending: submission scheduled, transfer in flight.
	NegotiationPending = core.NegotiationPending
	// NegotiationOffered: the proposal set awaits a response.
	NegotiationOffered = core.NegotiationOffered
	// NegotiationAccepted: a contract was agreed.
	NegotiationAccepted = core.NegotiationAccepted
	// NegotiationRejected: the submission will not run.
	NegotiationRejected = core.NegotiationRejected
)

// Application phases reported by Session.Status.
const (
	PhasePending     = core.PhasePending
	PhaseNegotiating = core.PhaseNegotiating
	PhaseRejected    = core.PhaseRejected
	PhasePlacing     = core.PhasePlacing
	PhaseQueued      = core.PhaseQueued
	PhaseRunning     = core.PhaseRunning
	PhaseSuspended   = core.PhaseSuspended
	PhaseCompleted   = core.PhaseCompleted
)

// Typed configuration errors (returned by New; match with errors.As).
type (
	// DuplicateVCError reports two VCs sharing a name.
	DuplicateVCError = core.DuplicateVCError
	// SiteError reports a private site that cannot host any VM.
	SiteError = core.SiteError
	// VCError reports an invalid virtual-cluster entry.
	VCError = core.VCError
)

// Workload types.
type (
	// App is the uniform submission template.
	App = workload.App
	// Workload is a time-ordered application stream.
	Workload = workload.Workload
	// AppType selects the VC family.
	AppType = workload.AppType
	// PaperWorkloadConfig parameterizes the paper's synthetic workload.
	PaperWorkloadConfig = workload.PaperConfig
	// GenConfig parameterizes the stochastic workload generators.
	GenConfig = workload.GenConfig
)

// Application types.
const (
	// TypeBatch targets OGE-like batch VCs.
	TypeBatch = workload.TypeBatch
	// TypeMapReduce targets Hadoop-like MapReduce VCs.
	TypeMapReduce = workload.TypeMapReduce
	// TypeService targets elastic long-running-service VCs with
	// latency/availability SLOs.
	TypeService = workload.TypeService
	// TypeServerless targets scale-to-zero function VCs with
	// cold-start-aware SLOs and per-invocation billing.
	TypeServerless = workload.TypeServerless
)

// Service workload types.
type (
	// LoadProfile is an open-loop request-rate shape (base + diurnal +
	// bursts) driving a long-running service.
	LoadProfile = workload.LoadProfile
	// Burst is one transient load spike inside a LoadProfile.
	Burst = workload.Burst
	// ServiceGenConfig parameterizes the service-stream generator.
	ServiceGenConfig = workload.ServiceConfig
	// SLO is the latency/availability objective of a service contract.
	SLO = sla.SLO
)

// GenerateServices builds a stream of long-running service applications
// with latency SLOs (see ServiceGenConfig).
func GenerateServices(cfg ServiceGenConfig) Workload { return workload.Services(cfg) }

// SLA types (negotiation API).
type (
	// Contract is an agreed SLA.
	Contract = sla.Contract
	// Offer is one (deadline, price) proposal.
	Offer = sla.Offer
	// User is a negotiation strategy.
	User = sla.User
	// AcceptFirst takes the first offer (the paper's evaluation users).
	AcceptFirst = sla.AcceptFirst
	// AcceptCheapest takes the lowest-price offer.
	AcceptCheapest = sla.AcceptCheapest
	// DeadlineBound imposes a deadline (urgent applications).
	DeadlineBound = sla.DeadlineBound
	// BudgetBound imposes a price cap (budget-constrained users).
	BudgetBound = sla.BudgetBound
)

// Accounting types.
type (
	// AppRecord is the per-application accounting trail.
	AppRecord = metrics.AppRecord
	// Aggregate condenses record sets into the paper's reported metrics.
	Aggregate = metrics.Aggregate
	// Series is a piecewise-constant usage time series.
	Series = metrics.Series
)

// New builds a platform from a config. The zero-valued fields of cfg are
// filled with the paper's experimental defaults.
func New(cfg Config) (*Platform, error) { return core.NewPlatform(cfg) }

// DefaultConfig returns the paper's §5.2-§5.3 experimental setup: 50
// private VMs split over two batch VCs, one EC2-like cloud with infinite
// capacity, private VM cost 2 units/VM-s and cloud cost 4 units/VM-s.
func DefaultConfig() Config { return core.DefaultConfig() }

// PaperWorkload returns the paper's synthetic workload: 65 single-VM
// batch applications at 5 s inter-arrival, 50 to VC1 and 15 to VC2.
func PaperWorkload() Workload {
	return workload.Paper(workload.DefaultPaperConfig())
}

// CustomPaperWorkload builds the paper workload with altered parameters.
func CustomPaperWorkload(cfg PaperWorkloadConfig) Workload { return workload.Paper(cfg) }

// GenerateWorkload builds a stochastic workload (Poisson, bursty,
// heavy-tailed — see GenConfig).
func GenerateWorkload(cfg GenConfig) Workload { return workload.Generate(cfg) }

// MergeWorkloads combines streams into one time-ordered workload.
func MergeWorkloads(streams ...Workload) Workload { return workload.Merge(streams...) }

// AggregateAll condenses a full ledger.
func AggregateAll(res *Results) Aggregate {
	return metrics.AggregateRecords(res.Ledger.All())
}

// AggregateVC condenses one VC's records.
func AggregateVC(res *Results, vc string) Aggregate {
	return metrics.AggregateRecords(res.Ledger.ByVC(vc))
}

// Seconds converts seconds to the simulation time unit.
func Seconds(s float64) sim.Time { return sim.Seconds(s) }

// RunExperiment executes a named reproduction experiment ("table1",
// "fig5", "fig6", "penalty-n", "billing", "policies", "market",
// "suspension", "sweep") and returns its rendered report. It runs with
// default execution options; use the exp package directly to bound the
// worker pool or override replication counts.
func RunExperiment(name string, seed int64) (string, error) {
	e, ok := exp.Find(name)
	if !ok {
		return "", &UnknownExperimentError{Name: name}
	}
	r, err := e.Run(seed, exp.Options{})
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// Experiments lists the available experiment names with the paper
// artifact each regenerates.
func Experiments() map[string]string {
	out := map[string]string{}
	for _, e := range exp.All() {
		out[e.Name] = e.Artifact
	}
	return out
}

// UnknownExperimentError reports a bad experiment name.
type UnknownExperimentError struct{ Name string }

// Error implements error.
func (e *UnknownExperimentError) Error() string {
	return "meryn: unknown experiment " + e.Name
}
